//! Degree statistics: `deg_{i,y}`, `Ψ_E`, `deg_{E,y}` and maximum degrees
//! `mdeg_E(y)` (Definition 4.7 of the paper).
//!
//! These statistics drive both the two-table partition procedure
//! (Algorithm 5, which buckets join values of attribute `B` by
//! `max{deg_{1,B}, deg_{2,B}}`) and the hierarchical partition procedure
//! (Algorithm 7, which buckets tuples over the ancestor attributes `y` by
//! `deg_{atom(x),y}`).

use std::collections::{BTreeMap, BTreeSet};

use crate::attr::AttrId;
use crate::cache::SubJoinCache;
use crate::error::RelationalError;
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::join::join_subset;
use crate::tuple::{project_positions, project_with_positions, Value};
use crate::Result;

/// Degree map of a *single* relation onto attributes `y ⊆ x_i`
/// (frequency-weighted): `deg_{i,y}(t) = Σ_{t' : π_y t' = t} R_i(t')`.
pub fn deg_single(
    instance: &Instance,
    relation: usize,
    y: &[AttrId],
) -> Result<BTreeMap<Vec<Value>, u64>> {
    instance.relation(relation).degree_map(y)
}

/// `Ψ_E(I)`: the set of projections onto `⋂_{i∈E} x_i` of the tuples in the
/// sub-join of the relations in `E` (Definition 4.7).
pub fn psi(query: &JoinQuery, instance: &Instance, e: &[usize]) -> Result<BTreeSet<Vec<Value>>> {
    if e.is_empty() {
        return Err(RelationalError::InvalidRelationSubset(
            "Ψ_E requires a non-empty relation subset".to_string(),
        ));
    }
    let cap = query.intersect_attrs(e)?;
    let result = join_subset(query, instance, e)?;
    result.distinct_projections(&cap)
}

/// [`psi`] evaluated through a [`SubJoinCache`], so that enumerating many
/// subsets `E` of the same instance shares sub-join work.
pub fn psi_cached(cache: &mut SubJoinCache<'_>, e: &[usize]) -> Result<BTreeSet<Vec<Value>>> {
    if e.is_empty() {
        return Err(RelationalError::InvalidRelationSubset(
            "Ψ_E requires a non-empty relation subset".to_string(),
        ));
    }
    let cap = cache.query().intersect_attrs(e)?;
    cache.join_rels(e)?.distinct_projections(&cap)
}

/// Degree map `deg_{E,y}` of Definition 4.7:
///
/// * `|E| = 1`, say `E = {i}`: the frequency-weighted degree of relation `i`
///   onto `y`;
/// * `|E| > 1`: the number of elements of `Ψ_E(I)` projecting onto each tuple
///   `t ∈ dom(y)`, where `y ⊆ ⋂_{i∈E} x_i`.
pub fn deg_multi(
    query: &JoinQuery,
    instance: &Instance,
    e: &[usize],
    y: &[AttrId],
) -> Result<BTreeMap<Vec<Value>, u64>> {
    match e.len() {
        0 => Err(RelationalError::InvalidRelationSubset(
            "deg_{E,y} requires a non-empty relation subset".to_string(),
        )),
        1 => deg_single(instance, e[0], y),
        _ => {
            let cap = query.intersect_attrs(e)?;
            let members = psi(query, instance, e)?;
            count_projections(&members, &cap, y)
        }
    }
}

/// [`deg_multi`] evaluated through a [`SubJoinCache`]: same semantics, but
/// the `|E| > 1` case reuses memoised sub-joins across calls.
pub fn deg_multi_cached(
    cache: &mut SubJoinCache<'_>,
    e: &[usize],
    y: &[AttrId],
) -> Result<BTreeMap<Vec<Value>, u64>> {
    match e.len() {
        0 => Err(RelationalError::InvalidRelationSubset(
            "deg_{E,y} requires a non-empty relation subset".to_string(),
        )),
        1 => cache.instance().relation(e[0]).degree_map(y),
        _ => {
            let cap = cache.query().intersect_attrs(e)?;
            let members = psi_cached(cache, e)?;
            count_projections(&members, &cap, y)
        }
    }
}

/// Shared `|E| > 1` body of [`deg_multi`] / [`deg_multi_cached`]: counts, for
/// each tuple of `dom(y)`, the members of `Ψ_E` (over `cap = ⋂ x_i`)
/// projecting onto it.
fn count_projections(
    members: &BTreeSet<Vec<Value>>,
    cap: &[AttrId],
    y: &[AttrId],
) -> Result<BTreeMap<Vec<Value>, u64>> {
    let positions = project_positions(cap, y)?;
    let mut out: BTreeMap<Vec<Value>, u64> = BTreeMap::new();
    for t in members {
        let key = project_with_positions(t, &positions);
        *out.entry(key).or_insert(0) += 1;
    }
    Ok(out)
}

/// Maximum degree `mdeg_E(y) = max_t deg_{E,y}(t)` (zero on empty data).
pub fn max_degree(
    query: &JoinQuery,
    instance: &Instance,
    e: &[usize],
    y: &[AttrId],
) -> Result<u64> {
    Ok(deg_multi(query, instance, e, y)?
        .values()
        .copied()
        .max()
        .unwrap_or(0))
}

/// The two-table local sensitivity statistic of Section 3.1:
/// `Δ = max_b max{deg_{1,B}(b), deg_{2,B}(b)}` where `B` is the set of shared
/// attributes of the two relations.
pub fn two_table_max_shared_degree(query: &JoinQuery, instance: &Instance) -> Result<u64> {
    if query.num_relations() != 2 {
        return Err(RelationalError::InvalidRelationSubset(format!(
            "two_table_max_shared_degree requires exactly 2 relations, got {}",
            query.num_relations()
        )));
    }
    let shared = query.intersect_attrs(&[0, 1])?;
    let d1 = instance.relation(0).max_degree(&shared)?;
    let d2 = instance.relation(1).max_degree(&shared)?;
    Ok(d1.max(d2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![
                (vec![0, 0], 1),
                (vec![0, 1], 1),
                (vec![1, 3], 3),
                (vec![5, 5], 7),
            ],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    #[test]
    fn single_relation_degrees_are_frequency_weighted() {
        let (_, inst) = two_table();
        let deg = deg_single(&inst, 0, &ids(&[1])).unwrap();
        assert_eq!(deg.get(&vec![0]).copied(), Some(3));
        assert_eq!(deg.get(&vec![1]).copied(), Some(1));
        let deg = deg_single(&inst, 1, &ids(&[1])).unwrap();
        assert_eq!(deg.get(&vec![0]).copied(), Some(2));
        assert_eq!(deg.get(&vec![1]).copied(), Some(3));
        assert_eq!(deg.get(&vec![5]).copied(), Some(7));
    }

    #[test]
    fn two_table_local_sensitivity_statistic() {
        let (q, inst) = two_table();
        // deg1,B: {0:3, 1:1}; deg2,B: {0:2, 1:3, 5:7} → max = 7.
        assert_eq!(two_table_max_shared_degree(&q, &inst).unwrap(), 7);
    }

    #[test]
    fn psi_counts_distinct_join_projections() {
        let (q, inst) = two_table();
        // Joining both relations, ⋂ = {B}; joining values are B=0 and B=1.
        let p = psi(&q, &inst, &[0, 1]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains(&vec![0]));
        assert!(p.contains(&vec![1]));
    }

    #[test]
    fn multi_relation_degree_counts_distinct_projections() {
        let (q, inst) = two_table();
        // deg_{E={0,1}, y=∅} counts |Ψ_E| = 2 under the single empty key.
        let deg = deg_multi(&q, &inst, &[0, 1], &[]).unwrap();
        assert_eq!(deg.get(&Vec::new()).copied(), Some(2));
        // deg_{E={0,1}, y={B}} is 1 for each joining B value.
        let deg = deg_multi(&q, &inst, &[0, 1], &ids(&[1])).unwrap();
        assert_eq!(deg.get(&vec![0]).copied(), Some(1));
        assert_eq!(deg.get(&vec![1]).copied(), Some(1));
        assert_eq!(max_degree(&q, &inst, &[0, 1], &ids(&[1])).unwrap(), 1);
    }

    #[test]
    fn star_join_hub_degrees() {
        let q = JoinQuery::star(3, 8).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for v in 0..3u64 {
            inst.relation_mut(0).add(vec![0, v], 1).unwrap();
        }
        inst.relation_mut(1).add(vec![0, 1], 1).unwrap();
        inst.relation_mut(2).add(vec![0, 2], 1).unwrap();
        // Relation 0 has degree 3 on hub value 0.
        assert_eq!(max_degree(&q, &inst, &[0], &ids(&[0])).unwrap(), 3);
        // The sub-join of relations {1, 2} has one joining hub value.
        assert_eq!(max_degree(&q, &inst, &[1, 2], &ids(&[0])).unwrap(), 1);
    }

    #[test]
    fn errors_on_empty_subset() {
        let (q, inst) = two_table();
        assert!(psi(&q, &inst, &[]).is_err());
        assert!(deg_multi(&q, &inst, &[], &[]).is_err());
    }

    #[test]
    fn two_table_statistic_requires_two_relations() {
        let q = JoinQuery::star(3, 8).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        assert!(two_table_max_shared_degree(&q, &inst).is_err());
    }
}
