//! The original `BTreeMap`-based join engine, retained as a cross-check
//! oracle.
//!
//! This module preserves the pre-hash-join evaluation strategy verbatim:
//! results and indexes are ordered maps keyed by `Vec<Value>`, relations are
//! folded strictly left-to-right, and every projection allocates.  It is
//! deliberately simple and obviously correct; the property tests
//! (`tests/properties.rs`) and the `join_throughput` / `residual_subsets`
//! benchmarks compare the optimised engine in [`crate::join`](mod@crate::join)
//! against it.

use std::collections::BTreeMap;

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::tuple::{
    intersect_attrs, project_positions, project_with_positions, union_attrs, Value,
};
use crate::Result;

/// A sparse join result produced by the naive engine: an ordered map from
/// result tuples to weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveJoinResult {
    attrs: Vec<AttrId>,
    tuples: BTreeMap<Vec<Value>, u128>,
}

impl NaiveJoinResult {
    /// The attribute list the result tuples range over (sorted).
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Total weight `Σ_t Join(t)` (saturating).
    pub fn total(&self) -> u128 {
        self.tuples
            .values()
            .fold(0u128, |acc, &w| acc.saturating_add(w))
    }

    /// Number of distinct result tuples.
    pub fn distinct_count(&self) -> usize {
        self.tuples.len()
    }

    /// Iterates over `(tuple, weight)` pairs in sorted order (the map's
    /// natural order).
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, u128)> {
        self.tuples.iter().map(|(t, &w)| (t, w))
    }

    /// Weight of a specific tuple (zero if absent).
    pub fn weight(&self, tuple: &[Value]) -> u128 {
        self.tuples.get(tuple).copied().unwrap_or(0)
    }

    /// Groups the result by a subset of its attributes, summing weights.
    pub fn group_by(&self, group_by: &[AttrId]) -> Result<BTreeMap<Vec<Value>, u128>> {
        let positions = project_positions(&self.attrs, group_by)?;
        let mut out: BTreeMap<Vec<Value>, u128> = BTreeMap::new();
        for (t, w) in self.iter() {
            let key = project_with_positions(t, &positions);
            let slot = out.entry(key).or_insert(0);
            *slot = slot.saturating_add(w);
        }
        if group_by.is_empty() && out.is_empty() {
            out.insert(Vec::new(), 0);
        }
        Ok(out)
    }

    /// Maximum group weight over `group_by` (zero for an empty result).
    pub fn max_group_weight(&self, group_by: &[AttrId]) -> Result<u128> {
        Ok(self
            .group_by(group_by)?
            .values()
            .copied()
            .max()
            .unwrap_or(0))
    }
}

/// Joins the subset `rels` of the instance's relations with the original
/// left-deep `BTreeMap` strategy.  Same contract as
/// [`crate::join::join_subset`].
pub fn join_subset_naive(
    query: &JoinQuery,
    instance: &Instance,
    rels: &[usize],
) -> Result<NaiveJoinResult> {
    query.check_subset(rels)?;
    if rels.is_empty() {
        return Err(RelationalError::InvalidRelationSubset(
            "cannot join an empty set of relations; the empty join is handled by callers"
                .to_string(),
        ));
    }
    if instance.num_relations() != query.num_relations() {
        return Err(RelationalError::RelationCountMismatch {
            expected: query.num_relations(),
            got: instance.num_relations(),
        });
    }

    // Start from the first relation, in the caller-given order.
    let first = instance.relation(rels[0]);
    let mut acc_attrs: Vec<AttrId> = first.attrs().to_vec();
    let mut acc: BTreeMap<Vec<Value>, u128> =
        first.iter().map(|(t, f)| (t.clone(), f as u128)).collect();

    for &ri in &rels[1..] {
        let rel = instance.relation(ri);
        let rel_attrs = rel.attrs().to_vec();
        let shared = intersect_attrs(&acc_attrs, &rel_attrs);
        let new_attrs = union_attrs(&acc_attrs, &rel_attrs);

        // Index the relation's tuples by their projection onto the shared
        // attributes.
        let rel_shared_pos = project_positions(&rel_attrs, &shared)?;
        let mut index: BTreeMap<Vec<Value>, Vec<(&Vec<Value>, u64)>> = BTreeMap::new();
        for (t, f) in rel.iter() {
            index
                .entry(project_with_positions(t, &rel_shared_pos))
                .or_default()
                .push((t, f));
        }

        let acc_shared_pos = project_positions(&acc_attrs, &shared)?;
        enum Side {
            Left(usize),
            Right(usize),
        }
        let merge_plan: Vec<Side> = new_attrs
            .iter()
            .map(|a| match acc_attrs.binary_search(a) {
                Ok(p) => Side::Left(p),
                Err(_) => Side::Right(
                    rel_attrs
                        .binary_search(a)
                        .expect("attribute must originate from one operand"),
                ),
            })
            .collect();

        let mut next: BTreeMap<Vec<Value>, u128> = BTreeMap::new();
        for (t, w) in &acc {
            let key = project_with_positions(t, &acc_shared_pos);
            if let Some(matches) = index.get(&key) {
                for (rt, rf) in matches {
                    let merged: Vec<Value> = merge_plan
                        .iter()
                        .map(|side| match side {
                            Side::Left(p) => t[*p],
                            Side::Right(p) => rt[*p],
                        })
                        .collect();
                    let contribution = w.saturating_mul(*rf as u128);
                    let slot = next.entry(merged).or_insert(0);
                    *slot = slot.saturating_add(contribution);
                }
            }
        }
        acc_attrs = new_attrs;
        acc = next;
    }

    Ok(NaiveJoinResult {
        attrs: acc_attrs,
        tuples: acc,
    })
}

/// Joins all relations of the query with the naive engine.
pub fn join_naive(query: &JoinQuery, instance: &Instance) -> Result<NaiveJoinResult> {
    let all: Vec<usize> = (0..query.num_relations()).collect();
    join_subset_naive(query, instance, &all)
}

/// The join size computed by the naive engine.
pub fn join_size_naive(query: &JoinQuery, instance: &Instance) -> Result<u128> {
    Ok(join_naive(query, instance)?.total())
}

/// All boundary values `T_F(I)` for proper subsets `F ⊊ [m]` computed from
/// scratch with the naive engine — the pre-`SubJoinCache` strategy, kept as
/// the oracle for the residual-sensitivity property tests and the
/// `residual_subsets` benchmark.
pub fn all_boundary_values_naive(
    query: &JoinQuery,
    instance: &Instance,
) -> Result<BTreeMap<Vec<usize>, u128>> {
    let m = query.num_relations();
    let mut out = BTreeMap::new();
    for mask in 0u32..((1u32 << m) - 1) {
        let f: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
        let value = if f.is_empty() {
            1
        } else {
            let boundary = query.boundary(&f)?;
            join_subset_naive(query, instance, &f)?.max_group_weight(&boundary)?
        };
        out.insert(f, value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    #[test]
    fn naive_engine_matches_manual_two_table() {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], 1), (vec![0, 1], 1), (vec![1, 3], 3)],
        )
        .unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let result = join_naive(&q, &inst).unwrap();
        assert_eq!(result.total(), 9);
        assert_eq!(result.weight(&[1, 0, 1]), 2);
        assert_eq!(result.max_group_weight(&ids(&[1])).unwrap(), 6);
        assert_eq!(join_size_naive(&q, &inst).unwrap(), 9);
    }

    #[test]
    fn naive_boundary_values_cover_all_proper_subsets() {
        let q = JoinQuery::star(3, 8).unwrap();
        let inst = Instance::empty_for(&q).unwrap();
        let values = all_boundary_values_naive(&q, &inst).unwrap();
        assert_eq!(values.len(), 7);
        assert_eq!(values.get(&vec![]).copied(), Some(1));
    }
}
