//! A long-lived execution context for the relational engine.
//!
//! [`ExecContext`] is the engine-level backing of the facade crate's
//! `dpsyn::Session`: it owns the [`Parallelism`] knob, the small-instance
//! sequential-fallback threshold, and — crucially — a **persistent,
//! instance-fingerprinted sub-join cache** that survives across calls.
//!
//! The sensitivity computations of the paper enumerate the `2^m` relation
//! subsets of one `(query, instance)` pair over and over: every residual
//! sensitivity at a new smoothing parameter `β`, every local-sensitivity
//! check and every repeated release over the same instance rebuilds the same
//! subset lattice.  Free-function entry points rebuild their
//! [`ShardedSubJoinCache`] from scratch each call, making cross-call reuse
//! structurally impossible.  An `ExecContext` instead checks the lattice out
//! of its persistent store ([`ExecContext::subjoin_cache`]), lets the
//! computation extend it, and checks it back in
//! ([`ExecContext::retain_subjoin_cache`]) — so a *warm* context answers
//! repeat sensitivity queries without recomputing a single sub-join.
//!
//! ### Fingerprinting and the slot LRU
//!
//! The cache is keyed by [`instance_fingerprint`], a 64-bit structural hash
//! of the query (relation attribute lists, attribute domain sizes) and the
//! full instance contents (every tuple and frequency, in the relations'
//! deterministic iteration order).  A checkout whose fingerprint matches a
//! stored slot receives that slot's warm lattice (Arc-shared, so concurrent
//! checkouts all see it); an unknown fingerprint receives an empty cache,
//! and checking it back in claims a slot of its own.  The context keeps a
//! small **LRU of slots** ([`DEFAULT_CACHE_SLOTS`], configurable via
//! [`ExecContext::with_cache_slots`]) rather than a single one, so
//! multi-instance pipelines — `HierarchicalRelease`'s per-part `MultiTable`
//! calls, servers answering over several instances, sensitivity sweeps that
//! revisit a handful of neighbours — stay warm too; only the
//! least-recently-used slot is evicted when the capacity is exceeded.
//! Mutating an instance changes its fingerprint, so ordinary edits can
//! never be served stale results.
//!
//! Each slot also retains the instance's [`DeltaJoinPlan`]
//! ([`ExecContext::delta_plan`]): the precomputed probe state that prices a
//! single-tuple neighbour edit at a hash lookup instead of a full re-join
//! (see [`crate::delta`]) — and the pair's cost-based [`JoinPlan`]
//! ([`ExecContext::join_plan`]): the boundary-aware decomposition DAG built
//! once from per-relation statistics and handed to **every** sub-join cache
//! checkout, so parallel and sequential consumers decompose the lattice
//! identically (see [`crate::plan`]).  [`ExecContext::plan_stats`] exposes
//! the chosen orders with estimated and actual intermediate sizes.  A slot
//! further retains the pair's [`DictionaryState`]
//! ([`ExecContext::attr_dictionary`]): the order-preserving attribute
//! dictionary and the instance re-encoded to dense `u32` codes, so the
//! dictionary-encoded probe path ([`ExecContext::join_dict`]) pays the
//! encode once per instance and probes on integer keys thereafter.
//!
//! **Trust model:** the fingerprint is a *non-cryptographic* Fx hash.  It
//! guards against accidental staleness (edits, instance swaps), not against
//! a caller who deliberately crafts a second instance colliding with the
//! first — but in the DP setting the caller *is* the data curator holding
//! the private instance, so an adversarial instance supplier is outside the
//! threat model (an adversary with instance-supplying access needs no hash
//! collision to learn the data).  Callers embedding this engine behind an
//! untrusted instance-upload boundary should call
//! [`ExecContext::clear_cache`] between principals.
//!
//! ### Determinism contract
//!
//! Reuse never changes bytes.  Cached sub-joins are exactly the values the
//! cold path computes (the planner's decomposition is a pure function of
//! the query and instance statistics — deterministic and
//! parallelism-independent — and a sub-join is the same weighted tuple set
//! under every decomposition), and the cached full join is produced by the
//! same size-ordered fold as [`crate::join::join`] — so a warm context's
//! outputs are **byte-identical** to a cold context's, which are in turn
//! byte-identical at every parallelism level and to the fixed-prefix
//! decomposition.  The caches trade memory for wall-clock time, never
//! output.

use std::hash::Hasher;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use crate::attr::AttrId;
use crate::cache::ShardedSubJoinCache;
use crate::delta::{DeltaJoinPlan, JoinSizeDelta};
use crate::exec::{self, Parallelism};
use crate::hash::{FxHashMap, FxHasher};
use crate::hypergraph::JoinQuery;
use crate::instance::{Instance, NeighborEdit};
use crate::join::{
    fold_fully_packable, grouped_join_size_impl, join_encoded, join_impl, join_size_impl,
    join_subset_impl, AggSummary, JoinResult,
};
use crate::plan::{
    JoinPlan, PlanConfig, PlanNodeStats, PlanStats, ReplanStats, SharedJoinPlan, PLAN_MAX_RELATIONS,
};
use crate::stream::{self, UpdateBatch, UpdateOp, UpdateStats};
use crate::tuple::{AttrDictionary, Value};
use crate::Result;

/// Default threshold (total distinct tuples across relations) below which
/// multi-threaded entry points take the sequential code paths — pool and
/// shard-lock overhead would dominate such tiny joins.  Results are
/// identical either way; only wall-clock differs.
pub const DEFAULT_MIN_PAR_INSTANCE: usize = 2048;

/// Default number of `(query, instance)` slots the persistent cache LRU
/// keeps warm at once.  Sized for the common multi-instance pipelines
/// (hierarchical per-part releases, small server working sets) while
/// bounding the resident sub-join memory to a handful of instances.
pub const DEFAULT_CACHE_SLOTS: usize = 8;

/// A 64-bit structural fingerprint of a `(query, instance)` pair: relation
/// attribute lists, attribute domain sizes, and every tuple/frequency of the
/// instance (hashed in the relations' deterministic iteration order).
///
/// Two equal pairs always produce the same fingerprint; the persistent
/// caches of [`ExecContext`] use it to detect that a call refers to the same
/// data as the previous one.
pub fn instance_fingerprint(query: &JoinQuery, instance: &Instance) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(query.num_relations());
    for attrs in query.relations() {
        h.write_usize(attrs.len());
        for a in attrs {
            h.write_u64(a.index() as u64);
        }
    }
    let schema = query.schema();
    h.write_usize(schema.attr_count());
    for id in schema.all_ids() {
        h.write_u64(schema.domain_size(id).unwrap_or(0));
    }
    h.write_usize(instance.num_relations());
    for r in instance.relations() {
        h.write_usize(r.distinct_count());
        for (t, f) in r.iter() {
            for &v in t {
                h.write_u64(v);
            }
            h.write_u64(f);
        }
    }
    h.finish()
}

/// The per-instance dictionary state cached in an LRU slot: the
/// order-preserving [`AttrDictionary`] plus the `(query, instance)` pair
/// re-encoded to dense `u32` codes, built once per instance fingerprint (see
/// [`ExecContext::attr_dictionary`]).
///
/// Codes are per-attribute sorted ranks, so encoding is monotone and the
/// decoded output of a join over the encoded pair is byte-identical to the
/// raw join.  When every fold step's key tuple packs into a single `u64`
/// ([`fully_packable`](DictionaryState::fully_packable)), the probe loops run
/// entirely on integer compares.
#[derive(Debug)]
pub struct DictionaryState {
    /// The per-attribute dictionary mapping wide values to dense codes.
    pub dictionary: AttrDictionary,
    /// The query with every attribute domain shrunk to its code count.
    pub encoded_query: JoinQuery,
    /// The instance with every value replaced by its dense code.
    pub encoded_instance: Instance,
    fully_packable: bool,
}

impl DictionaryState {
    /// Whether every binary step of the engine's fold over the encoded
    /// instance packs its probe-key tuple into one `u64` (the fast path of
    /// [`crate::join::hash_join_step_dict`]).
    pub fn fully_packable(&self) -> bool {
        self.fully_packable
    }
}

/// What [`ExecContext::apply_updates`] did with one [`UpdateBatch`]: the
/// fingerprint transition plus how much warm state survived it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// Fingerprint of the `(query, instance)` pair before the batch.
    pub old_fingerprint: u64,
    /// Fingerprint after the batch (equal to `old_fingerprint` only when
    /// the batch was a net no-op).
    pub new_fingerprint: u64,
    /// Number of ops in the batch (gross, before net cancellation).
    pub ops: usize,
    /// Whether a warm LRU slot was found under the old fingerprint and
    /// migrated; `false` means the batch was applied cold (plain mutation,
    /// caches rebuild lazily under the new fingerprint).
    pub warm: bool,
    /// Per-mask maintenance counters from the semi-naive lattice patch
    /// ([`crate::stream`]).
    pub stats: UpdateStats,
    /// Whether the slot's [`DictionaryState`] survived the batch (every
    /// inserted value already had a code, so the dictionary was re-used to
    /// re-encode the updated instance); `false` means it was invalidated
    /// (absent or an unseen value arrived) and rebuilds lazily.
    pub dictionary_retained: bool,
}

/// One `(query, instance)` entry of the persistent cache LRU.
#[derive(Debug)]
struct CacheSlot {
    /// Fingerprint of the `(query, instance)` pair the slot belongs to.
    fingerprint: u64,
    /// Materialised sub-join lattice entries, keyed by subset bitmask.
    lattice: FxHashMap<u32, Arc<JoinResult>>,
    /// The full join produced by the standard size-ordered fold.
    full_join: Option<Arc<JoinResult>>,
    /// The instance's precomputed delta-join plan (see [`crate::delta`]).
    delta_plan: Option<Arc<DeltaJoinPlan>>,
    /// The pair's cost-based decomposition plan (see [`crate::plan`]),
    /// shared by every sub-join cache checkout.
    join_plan: Option<SharedJoinPlan>,
    /// Runtime-feedback diagnostics accumulated by adaptive checkouts over
    /// this pair (see [`ReplanStats`]): carried out on checkout, merged back
    /// on check-in, surfaced via [`ExecContext::plan_stats`].
    replan: Option<ReplanStats>,
    /// The pair's attribute dictionary and encoded instance (see
    /// [`DictionaryState`]), built alongside the join plan on first use.
    dictionary: Option<Arc<DictionaryState>>,
    /// Per-mask streaming indexes over the lattice entries (see
    /// [`crate::stream::EntryIndex`]), kept across batches so a steady
    /// update stream pays each index build once.
    stream_index: FxHashMap<u32, stream::EntryIndex>,
    /// Count-only aggregate summaries (see [`crate::join::AggSummary`]) —
    /// the lattice overlay of masks evaluated without materialisation,
    /// carried across checkouts like the lattice itself.
    agg_lattice: FxHashMap<u32, Arc<AggSummary>>,
    /// Logical access time (monotonic per context) driving LRU eviction.
    last_used: u64,
}

impl CacheSlot {
    /// Approximate resident bytes across both lattice entry kinds.
    fn approx_bytes(&self) -> usize {
        self.lattice
            .values()
            .map(|r| r.approx_bytes())
            .sum::<usize>()
            + self
                .agg_lattice
                .values()
                .map(|s| s.approx_bytes())
                .sum::<usize>()
    }
}

/// Counters of LRU slot evictions on an [`ExecContext`] — what the
/// byte-level cache accounting lost to capacity, so the
/// materialize-vs-aggregate decision's footprint effect stays auditable
/// even after slots churn.  Surfaced via [`ExecContext::eviction_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionStats {
    /// Number of slot evictions performed by the LRU.
    pub evictions: u64,
    /// Total lattice entries (materialised + aggregated) discarded.
    pub evicted_entries: usize,
    /// Approximate bytes discarded with them.
    pub evicted_bytes: usize,
}

/// The persistent cache state guarded by the context's mutex: a small LRU of
/// per-instance slots plus hit/miss counters.
#[derive(Debug, Default)]
struct CacheState {
    slots: Vec<CacheSlot>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: EvictionStats,
}

impl CacheState {
    /// The slot for `fingerprint`, touched as most-recently-used.
    fn slot_mut(&mut self, fingerprint: u64) -> Option<&mut CacheSlot> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.fingerprint == fingerprint)?;
        slot.last_used = clock;
        Some(slot)
    }

    /// The slot for `fingerprint`, created (and the LRU slot evicted when
    /// over `capacity`) if absent.  Touched as most-recently-used.
    fn slot_mut_or_insert(&mut self, fingerprint: u64, capacity: usize) -> &mut CacheSlot {
        self.clock += 1;
        let clock = self.clock;
        if let Some(pos) = self.slots.iter().position(|s| s.fingerprint == fingerprint) {
            let slot = &mut self.slots[pos];
            slot.last_used = clock;
            return slot;
        }
        if self.slots.len() >= capacity.max(1) {
            let evict = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(pos, _)| pos)
                .expect("non-empty slot list");
            let gone = self.slots.swap_remove(evict);
            self.evictions.evictions += 1;
            self.evictions.evicted_entries += gone.lattice.len() + gone.agg_lattice.len();
            self.evictions.evicted_bytes += gone.approx_bytes();
        }
        self.slots.push(CacheSlot {
            fingerprint,
            lattice: FxHashMap::default(),
            full_join: None,
            delta_plan: None,
            join_plan: None,
            replan: None,
            dictionary: None,
            stream_index: FxHashMap::default(),
            agg_lattice: FxHashMap::default(),
            last_used: clock,
        });
        self.slots.last_mut().expect("just pushed")
    }

    /// Removes and returns the slot for `fingerprint`, if present.  Used by
    /// streaming maintenance to migrate a slot across a fingerprint
    /// transition: while the slot is out, no concurrent reader can observe
    /// it half-updated, and if maintenance fails the stale slot simply
    /// stays gone.
    fn take_slot(&mut self, fingerprint: u64) -> Option<CacheSlot> {
        let pos = self
            .slots
            .iter()
            .position(|s| s.fingerprint == fingerprint)?;
        Some(self.slots.swap_remove(pos))
    }
}

/// A long-lived execution context: parallelism knob, small-instance
/// threshold, and persistent instance-fingerprinted caches (see the module
/// docs).
///
/// All methods take `&self`; the cache slots live behind a mutex, so a
/// context can be shared by reference across the layers of one pipeline.
/// Locks are held only for map bookkeeping, never across a join.
#[derive(Debug)]
pub struct ExecContext {
    parallelism: Parallelism,
    min_par_instance: usize,
    cache_slots: usize,
    plan_config: PlanConfig,
    state: Mutex<CacheState>,
}

impl Default for ExecContext {
    /// The environment's parallelism ([`Parallelism::available`]) and the
    /// default small-instance threshold.
    fn default() -> Self {
        ExecContext::new(Parallelism::default())
    }
}

impl ExecContext {
    /// Creates a context with the given parallelism and default thresholds.
    pub fn new(parallelism: Parallelism) -> Self {
        ExecContext {
            parallelism,
            min_par_instance: DEFAULT_MIN_PAR_INSTANCE,
            cache_slots: DEFAULT_CACHE_SLOTS,
            plan_config: PlanConfig::default(),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// The strictly sequential context: one worker, no spawned threads —
    /// the exact historical single-threaded code paths.
    pub fn sequential() -> Self {
        ExecContext::new(Parallelism::SEQUENTIAL)
    }

    /// A context with exactly `n` worker threads.
    pub fn with_threads(n: usize) -> Self {
        ExecContext::new(Parallelism::threads(n))
    }

    /// Sets the small-instance threshold: instances with fewer total
    /// distinct tuples run the sequential code paths even under a
    /// multi-thread [`Parallelism`] (results are identical; only wall-clock
    /// differs).
    pub fn with_min_par_instance(mut self, min_par_instance: usize) -> Self {
        self.min_par_instance = min_par_instance;
        self
    }

    /// Sets the number of `(query, instance)` slots the persistent cache LRU
    /// keeps warm at once (clamped to at least 1; default
    /// [`DEFAULT_CACHE_SLOTS`]).  One slot reproduces the historical
    /// single-instance behaviour: any other instance evicts the previous
    /// one's entries.
    pub fn with_cache_slots(mut self, cache_slots: usize) -> Self {
        self.cache_slots = cache_slots.max(1);
        self
    }

    /// The cache LRU's slot capacity.
    pub fn cache_slots(&self) -> usize {
        self.cache_slots
    }

    /// Sets the adaptive-planning knobs (default [`PlanConfig::default`],
    /// which reads `DPSYN_REPLAN_RATIO` from the environment).  Consumers
    /// running adaptive populates or walks over this context's checkouts
    /// read the config via [`ExecContext::plan_config`].
    pub fn with_plan_config(mut self, plan_config: PlanConfig) -> Self {
        self.plan_config = plan_config;
        self
    }

    /// The adaptive-planning knobs (see [`PlanConfig`]).
    pub fn plan_config(&self) -> &PlanConfig {
        &self.plan_config
    }

    /// The worker-thread knob.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The small-instance sequential-fallback threshold.
    pub fn min_par_instance(&self) -> usize {
        self.min_par_instance
    }

    /// Whether `instance` falls below the small-instance threshold.
    pub fn is_small_instance(&self, instance: &Instance) -> bool {
        let mut total = 0usize;
        for i in 0..instance.num_relations() {
            total += instance.relation(i).distinct_count();
            if total >= self.min_par_instance {
                return false;
            }
        }
        true
    }

    /// The parallelism level to use for work over `instance`: sequential
    /// below the small-instance threshold, the context's knob otherwise.
    pub fn effective_parallelism(&self, instance: &Instance) -> Parallelism {
        if self.is_small_instance(instance) {
            Parallelism::SEQUENTIAL
        } else {
            self.parallelism
        }
    }

    // --- join evaluation ---------------------------------------------------

    /// Joins all relations of the query (the paper's `Join_I`) at this
    /// context's parallelism.  Does not consult the persistent caches; use
    /// [`ExecContext::shared_join`] for cross-call reuse.
    pub fn join(&self, query: &JoinQuery, instance: &Instance) -> Result<JoinResult> {
        join_impl(query, instance, self.parallelism)
    }

    /// Joins the subset `rels` of the instance's relations.
    pub fn join_subset(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        rels: &[usize],
    ) -> Result<JoinResult> {
        join_subset_impl(query, instance, rels, self.parallelism)
    }

    /// The join size `count(I)`.
    pub fn join_size(&self, query: &JoinQuery, instance: &Instance) -> Result<u128> {
        join_size_impl(query, instance, self.parallelism)
    }

    /// Joins the relation subset `rels` and groups by `group_by` (the
    /// `T_{E,y}` substrate).
    pub fn grouped_join_size(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        rels: &[usize],
        group_by: &[AttrId],
    ) -> Result<std::collections::BTreeMap<Vec<Value>, u128>> {
        grouped_join_size_impl(query, instance, rels, group_by, self.parallelism)
    }

    /// The full join of `(query, instance)`, cached across calls.
    ///
    /// The first call on a given fingerprint computes the join with the
    /// standard size-ordered fold and stores it; later calls on the same
    /// data return the **same** `Arc` — byte-identical by construction and
    /// free of charge.  This is what makes repeated query answering over one
    /// instance (truth computation, workload sweeps) near-free on a warm
    /// context.
    pub fn shared_join(&self, query: &JoinQuery, instance: &Instance) -> Result<Arc<JoinResult>> {
        let fp = instance_fingerprint(query, instance);
        {
            let mut state = self.state.lock().expect("context cache poisoned");
            if let Some(full) = state
                .slot_mut(fp)
                .and_then(|slot| slot.full_join.as_ref().map(Arc::clone))
            {
                state.hits += 1;
                return Ok(full);
            }
        }
        let full = Arc::new(join_impl(query, instance, self.parallelism)?);
        let mut state = self.state.lock().expect("context cache poisoned");
        state.misses += 1;
        state.slot_mut_or_insert(fp, self.cache_slots).full_join = Some(Arc::clone(&full));
        Ok(full)
    }

    // --- join planning ------------------------------------------------------

    /// The pair's cost-based [`JoinPlan`], computed once per instance
    /// fingerprint and cached in the LRU slot: per-relation statistics are
    /// gathered in one pass, every subset's decomposition pivot is chosen to
    /// minimise the estimated intermediate it depends on, and the same
    /// `Arc` is handed to every subsequent sub-join cache checkout — so all
    /// consumers (sequential, parallel, warm, cold) decompose identically.
    ///
    /// A bare plan lookup never claims (or evicts) an LRU slot — reads stay
    /// eviction-free, like lattice checkouts.  The plan persists once the
    /// pair holds a slot: [`ExecContext::retain_subjoin_cache`] stores the
    /// checked-in cache's cost-based plan alongside its lattice.
    pub fn join_plan(&self, query: &JoinQuery, instance: &Instance) -> Result<SharedJoinPlan> {
        let fp = instance_fingerprint(query, instance);
        self.join_plan_at(fp, query, instance)
    }

    /// [`ExecContext::join_plan`] for a pre-computed fingerprint (so
    /// checkouts fingerprint the instance once, not twice).
    fn join_plan_at(
        &self,
        fp: u64,
        query: &JoinQuery,
        instance: &Instance,
    ) -> Result<SharedJoinPlan> {
        {
            let mut state = self.state.lock().expect("context cache poisoned");
            if let Some(plan) = state
                .slot_mut(fp)
                .and_then(|slot| slot.join_plan.as_ref().map(Arc::clone))
            {
                return Ok(plan);
            }
        }
        // The statistics pass parallelises per relation; the plan built from
        // the merged stats is identical at every thread count.
        let plan = Arc::new(JoinPlan::cost_based_with(
            query,
            instance,
            self.effective_parallelism(instance),
        )?);
        let mut state = self.state.lock().expect("context cache poisoned");
        // Store only into an existing slot: a plan lookup is a read and must
        // not evict anyone; check-in claims the slot and persists the plan.
        match state.slot_mut(fp) {
            Some(slot) => Ok(Arc::clone(slot.join_plan.get_or_insert(plan))),
            None => Ok(plan),
        }
    }

    // --- dictionary-encoded probing -----------------------------------------

    /// The pair's [`DictionaryState`] — attribute dictionary plus encoded
    /// `(query, instance)` — built once per instance fingerprint and cached
    /// in the LRU slot alongside the join plan.
    ///
    /// The first call pays one pass over the instance (collect + sort the
    /// per-attribute value sets, re-encode every tuple); later calls on the
    /// same data return the same `Arc`.  Mutating the instance changes its
    /// fingerprint, so a stale dictionary can never be served.
    pub fn attr_dictionary(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> Result<Arc<DictionaryState>> {
        let fp = instance_fingerprint(query, instance);
        {
            let mut state = self.state.lock().expect("context cache poisoned");
            if let Some(dict) = state
                .slot_mut(fp)
                .and_then(|slot| slot.dictionary.as_ref().map(Arc::clone))
            {
                state.hits += 1;
                return Ok(dict);
            }
        }
        let dictionary = AttrDictionary::build(query, instance);
        let (encoded_query, encoded_instance) = dictionary.encode_instance(query, instance)?;
        let fully_packable = fold_fully_packable(&encoded_instance, &dictionary);
        let dict = Arc::new(DictionaryState {
            dictionary,
            encoded_query,
            encoded_instance,
            fully_packable,
        });
        let mut state = self.state.lock().expect("context cache poisoned");
        state.misses += 1;
        Ok(Arc::clone(
            state
                .slot_mut_or_insert(fp, self.cache_slots)
                .dictionary
                .get_or_insert_with(|| Arc::clone(&dict)),
        ))
    }

    /// Joins all relations through the dictionary-encoded probe path:
    /// values are replaced by dense per-attribute codes (cached via
    /// [`ExecContext::attr_dictionary`]), the fold probes on code tuples —
    /// packed into single `u64` keys wherever they fit — and the result is
    /// decoded on emit.
    ///
    /// **Byte-identical** to [`ExecContext::join`]: codes are sorted ranks,
    /// so encoding preserves per-attribute order, every fold makes the same
    /// build/probe choices, and decode restores the exact raw values.  The
    /// win is wall-clock on wide-valued attributes, where key equality and
    /// hashing collapse to integer ops.
    pub fn join_dict(&self, query: &JoinQuery, instance: &Instance) -> Result<JoinResult> {
        let dict = self.attr_dictionary(query, instance)?;
        join_encoded(
            &dict.encoded_query,
            &dict.encoded_instance,
            &dict.dictionary,
            self.parallelism,
        )
    }

    // --- persistent sub-join lattice ---------------------------------------

    /// Checks the persistent sub-join lattice out of the context for
    /// `(query, instance)`.
    ///
    /// If the fingerprint matches the stored slot, the returned
    /// [`ShardedSubJoinCache`] starts **warm** (seeded with every previously
    /// materialised sub-join); otherwise it starts empty.  Either way it
    /// decomposes subsets along the slot's shared cost-based [`JoinPlan`]
    /// (built on first checkout).  Pair with
    /// [`ExecContext::retain_subjoin_cache`] to persist whatever the
    /// computation materialised.  The memo entries are `Arc`-shared clones,
    /// so concurrent checkouts of the same context all see the warm lattice
    /// and check-ins merge rather than overwrite each other's work.
    pub fn subjoin_cache<'a>(
        &self,
        query: &'a JoinQuery,
        instance: &'a Instance,
    ) -> Result<ShardedSubJoinCache<'a>> {
        let fp = instance_fingerprint(query, instance);
        let plan = self.join_plan_at(fp, query, instance)?;
        let (memo, agg, replan) = {
            let mut state = self.state.lock().expect("context cache poisoned");
            match state.slot_mut(fp) {
                Some(slot) if !slot.lattice.is_empty() || !slot.agg_lattice.is_empty() => {
                    let out = (
                        slot.lattice.clone(),
                        slot.agg_lattice.clone(),
                        slot.replan.clone(),
                    );
                    state.hits += 1;
                    out
                }
                Some(slot) => {
                    let out = (
                        FxHashMap::default(),
                        FxHashMap::default(),
                        slot.replan.clone(),
                    );
                    state.misses += 1;
                    out
                }
                None => {
                    state.misses += 1;
                    (FxHashMap::default(), FxHashMap::default(), None)
                }
            }
        };
        let mut cache = ShardedSubJoinCache::with_memo_and_plan(query, instance, memo, plan)?;
        cache.fingerprint = Some(fp);
        cache.replan = replan;
        // The materialize-vs-aggregate policy rides the context's plan
        // config; the warm overlay re-seeds so repeated aggregate reads
        // stay free across checkouts.
        cache.agg_mode = self.plan_config.agg_mode;
        cache.seed_agg(agg);
        Ok(cache)
    }

    /// Checks a sub-join cache back into the context, persisting its
    /// materialised lattice for the next call over the same data.  The
    /// entries are merged into the pair's LRU slot (so concurrent callers
    /// compound instead of clobbering each other); an unknown pair claims a
    /// fresh slot, evicting the least-recently-used one when the context is
    /// at capacity.
    pub fn retain_subjoin_cache(&self, cache: ShardedSubJoinCache<'_>) {
        // Checkout stamped the fingerprint; hand-built caches pay one hash.
        let fp = cache
            .fingerprint
            .unwrap_or_else(|| instance_fingerprint(cache.query(), cache.instance()));
        let plan = Arc::clone(cache.plan());
        let replan = cache.replan.clone();
        let agg = cache.agg_entries();
        let memo = cache.into_memo();
        let mut state = self.state.lock().expect("context cache poisoned");
        // Values for equal masks are equal under every decomposition (a
        // sub-join is the same weighted tuple set regardless of the plan
        // that built it), so overwrite-on-merge is safe even when a
        // hand-built fixed-prefix cache checks into a planner slot.
        let slot = state.slot_mut_or_insert(fp, self.cache_slots);
        slot.lattice.extend(memo);
        slot.agg_lattice.extend(agg);
        // Persist the checkout's cost-based plan so the next checkout
        // decomposes identically without rebuilding it.  Hand-built
        // fixed-prefix caches never displace a planner plan — but an
        // adaptive checkout that actually re-planned supersedes the slot's
        // stale-estimate plan, so the next checkout starts on the
        // anchor-corrected decomposition.
        if plan.is_cost_based() {
            if replan.as_ref().map(|r| r.replans).unwrap_or(0) > 0 {
                slot.join_plan = Some(plan);
            } else {
                slot.join_plan.get_or_insert(plan);
            }
        }
        // The checkout's feedback stats started from the slot's (copied out
        // at checkout), so storing them back is a merge, not a clobber.
        if replan.is_some() {
            slot.replan = replan;
        }
    }

    // --- delta-join maintenance ---------------------------------------------

    /// The instance's precomputed [`DeltaJoinPlan`], cached in the pair's
    /// LRU slot: the first call builds it from the (possibly warm) sub-join
    /// lattice; later calls on the same data return the same `Arc`.  Edit
    /// sweeps over one instance therefore pay the plan precomputation once
    /// and price every subsequent edit at a hash probe (see [`crate::delta`]).
    pub fn delta_plan(&self, query: &JoinQuery, instance: &Instance) -> Result<Arc<DeltaJoinPlan>> {
        let fp = instance_fingerprint(query, instance);
        {
            let mut state = self.state.lock().expect("context cache poisoned");
            if let Some(plan) = state
                .slot_mut(fp)
                .and_then(|slot| slot.delta_plan.as_ref().map(Arc::clone))
            {
                state.hits += 1;
                return Ok(plan);
            }
        }
        let cache = self.subjoin_cache(query, instance)?;
        let par = self.effective_parallelism(instance);
        let plan = Arc::new(DeltaJoinPlan::build(query, instance, &cache, par)?);
        self.retain_subjoin_cache(cache);
        let mut state = self.state.lock().expect("context cache poisoned");
        state
            .slot_mut_or_insert(fp, self.cache_slots)
            .delta_plan
            .get_or_insert_with(|| Arc::clone(&plan));
        Ok(plan)
    }

    /// The signed join-size change of applying one neighbouring `edit` to
    /// `instance`, via the cached delta plan — no join over the edited
    /// instance is ever built.
    ///
    /// Each call pays one structural fingerprint of `instance` to find the
    /// cached plan; for per-edit loops use [`ExecContext::join_size_deltas`]
    /// (or hold the [`ExecContext::delta_plan`] and probe it directly),
    /// which fingerprints once for the whole sweep.
    pub fn join_size_delta(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edit: &NeighborEdit,
    ) -> Result<JoinSizeDelta> {
        self.delta_plan(query, instance)?.join_size_delta(edit)
    }

    /// The signed join-size changes of a batch of neighbouring edits, in
    /// edit order: one plan lookup (a single instance fingerprint) plus a
    /// hash probe per edit, swept through the worker pool.
    pub fn join_size_deltas(
        &self,
        query: &JoinQuery,
        instance: &Instance,
        edits: &[NeighborEdit],
    ) -> Result<Vec<JoinSizeDelta>> {
        let plan = self.delta_plan(query, instance)?;
        // Probes are cheap: honour the small-instance sequential fallback.
        exec::par_map(self.effective_parallelism(instance), edits.len(), |i| {
            plan.join_size_delta(&edits[i])
        })
        .into_iter()
        .collect()
    }

    // --- streaming updates --------------------------------------------------

    /// Applies a streaming [`UpdateBatch`] to `instance` while migrating the
    /// pair's warm LRU slot across the fingerprint transition (see
    /// [`crate::stream`]).
    ///
    /// When a slot exists under the pre-update fingerprint, its sub-join
    /// lattice and cached full join are maintained **in place** semi-naive
    /// style (see the [`crate::stream`] module docs), its [`DeltaJoinPlan`] is
    /// regrouped from the maintained lattice without recomputing a single
    /// join, and its [`DictionaryState`] is re-used when every inserted
    /// value is already coded (invalidated otherwise — it rebuilds lazily).
    /// The migrated slot is re-keyed under the post-update fingerprint, so
    /// warm state survives writes instead of being orphaned.  Without a
    /// warm slot the batch is applied as a plain mutation and caches
    /// rebuild lazily.
    ///
    /// **Byte-identity:** maintained state holds exactly the weighted tuple
    /// sets a cold rebuild of the updated instance produces, so every
    /// downstream observable is byte-identical to dropping the cache and
    /// starting over — at every thread count, morsel size and schedule.
    /// Validation errors leave both the instance and the cache untouched; a
    /// failure during maintenance itself discards the (now unreliable) slot
    /// rather than ever serving stale state.
    pub fn apply_updates(
        &self,
        query: &JoinQuery,
        instance: &mut Instance,
        batch: &UpdateBatch,
    ) -> Result<UpdateReport> {
        // Validate before touching the slot: a malformed batch must cost
        // neither the instance nor the warm cache.  The net deltas double as
        // the validation (read against pre-update frequencies — a delete
        // checks what is currently stored) and are computed exactly once,
        // shared by maintenance and the sketch patch below.
        let deltas = batch.net_deltas(query, instance)?;
        let old_fp = instance_fingerprint(query, instance);
        let m = query.num_relations();
        // Masks address at most 31 relations; larger queries take the cold
        // path (no lattice is ever cached for them anyway).
        let slot = if m <= 31 {
            let mut state = self.state.lock().expect("context cache poisoned");
            state.take_slot(old_fp)
        } else {
            None
        };
        let Some(mut slot) = slot else {
            stream::apply_net_deltas(instance, &deltas);
            return Ok(UpdateReport {
                old_fingerprint: old_fp,
                new_fingerprint: instance_fingerprint(query, instance),
                ops: batch.len(),
                warm: false,
                stats: UpdateStats::default(),
                dictionary_retained: false,
            });
        };
        // The cached full join is exactly the full-mask lattice entry;
        // merge it in so one maintenance pass covers it too.
        let full_mask = ((1u64 << m) - 1) as u32;
        let mut memo = std::mem::take(&mut slot.lattice);
        if let Some(full) = slot.full_join.take() {
            memo.entry(full_mask).or_insert(full);
        }
        let par = self.effective_parallelism(instance);
        let mut indexes = std::mem::take(&mut slot.stream_index);
        let stats = stream::maintain_memo(
            query,
            instance,
            &mut memo,
            &mut indexes,
            &deltas,
            slot.join_plan.as_deref(),
            par,
        )?;
        let new_fp = instance_fingerprint(query, instance);
        // Dictionary: retained and re-applied when it still covers every
        // value, invalidated when an unseen value arrived (satellite fix:
        // a stale dictionary must never survive a fingerprint migration).
        let dictionary = match slot.dictionary.take() {
            Some(dict) => {
                refresh_dictionary(&dict.dictionary, query, instance, batch)?.map(Arc::new)
            }
            None => None,
        };
        let dictionary_retained = dictionary.is_some();
        // Delta plan: the probe state is derived from the lattice, so
        // rebuilding it from the maintained memo is pure regrouping — no
        // sub-join is recomputed.
        let delta_plan = if slot.delta_plan.take().is_some() {
            let plan = match slot.join_plan.as_ref() {
                Some(plan) => Arc::clone(plan),
                None => Arc::new(JoinPlan::cost_based_with(query, instance, par)?),
            };
            let mut cache =
                ShardedSubJoinCache::with_memo_and_plan(query, instance, memo, Arc::clone(&plan))?;
            cache.fingerprint = Some(new_fp);
            let dp = Arc::new(DeltaJoinPlan::build(query, instance, &cache, par)?);
            memo = cache.into_memo();
            slot.join_plan.get_or_insert(plan);
            Some(dp)
        } else {
            None
        };
        let full_join = memo.get(&full_mask).map(Arc::clone);
        let mut state = self.state.lock().expect("context cache poisoned");
        // Merge-don't-clobber, mirroring `retain_subjoin_cache`: if a
        // concurrent caller already claimed the new fingerprint, its state
        // is at least as fresh as ours.
        let new_slot = state.slot_mut_or_insert(new_fp, self.cache_slots);
        new_slot.lattice.extend(memo);
        // Index validity is keyed to the entries' Arc identities, so stale
        // carriers are harmless — they just rebuild on next use.
        new_slot.stream_index.extend(indexes);
        if let Some(full) = full_join {
            new_slot.full_join.get_or_insert(full);
        }
        if let Some(dp) = delta_plan {
            new_slot.delta_plan.get_or_insert(dp);
        }
        if let Some(dict) = dictionary {
            new_slot.dictionary.get_or_insert(dict);
        }
        // Patch the retained plan's sketch statistics from the batch's net
        // deltas instead of keeping stale estimates (or re-gathering from
        // scratch): inserts fold straight into the mergeable sketches and
        // row counts are set exactly, so the migrated slot plans from
        // current cardinalities at delta cost per batch.  Insert-only
        // sketches cannot forget, so after net removals the distinct
        // estimates become upper bounds — bounded drift the runtime
        // re-plan feedback absorbs; only once a relation has lost a
        // sizeable share of its rows is it re-gathered from scratch.
        if let Some(plan) = slot.join_plan.take() {
            if plan.is_cost_based() {
                let patched = plan.stats().and_then(|stats| {
                    let mut stats = stats.clone();
                    for delta in &deltas {
                        let r = delta.relation();
                        let rows = instance.relation(r).distinct_count();
                        if delta.removed_rows() * 4 >= rows.max(1) {
                            stats.refresh_relation(instance, r);
                        } else {
                            stats.absorb_inserts(r, delta.added().keys().map(Vec::as_slice));
                            stats.set_rows(r, rows);
                        }
                    }
                    JoinPlan::from_stats(query, instance, stats).ok()
                });
                let plan = patched.map(Arc::new).unwrap_or(plan);
                new_slot.join_plan.get_or_insert(plan);
            }
        }
        // Feedback stats describe estimate quality of the same query family;
        // they ride the migration like the lattice does.  The old slot's
        // count-only summaries do NOT migrate: they describe pre-update
        // aggregates with no delta-maintenance story, so they are dropped
        // with the taken slot and recompute (cheaply) on demand.
        if let Some(replan) = slot.replan.take() {
            new_slot.replan.get_or_insert(replan);
        }
        Ok(UpdateReport {
            old_fingerprint: old_fp,
            new_fingerprint: new_fp,
            ops: batch.len(),
            warm: true,
            stats,
            dictionary_retained,
        })
    }

    /// Number of sub-join lattice entries currently persisted across all LRU
    /// slots (excluding cached full joins and delta plans).
    pub fn cached_subjoins(&self) -> usize {
        self.state
            .lock()
            .expect("context cache poisoned")
            .slots
            .iter()
            .map(|s| s.lattice.len())
            .sum()
    }

    /// Total distinct tuples across all persisted lattice entries — the
    /// resident intermediate footprint the cost-based planner works to
    /// shrink (tracked by the `planner/*` rows of `BENCH_join.json`).
    pub fn cached_subjoin_tuples(&self) -> usize {
        self.state
            .lock()
            .expect("context cache poisoned")
            .slots
            .iter()
            .flat_map(|s| s.lattice.values())
            .map(|r| r.distinct_count())
            .sum()
    }

    /// Approximate resident bytes across all persisted lattice entries of
    /// **both** kinds — flat tuple buffers for materialised entries plus
    /// the fixed-size summaries of count-only ones.  This is the footprint
    /// the aggregate-pushdown mode shrinks; pair with
    /// [`ExecContext::eviction_stats`] to audit what the LRU discarded.
    pub fn cached_subjoin_bytes(&self) -> usize {
        self.state
            .lock()
            .expect("context cache poisoned")
            .slots
            .iter()
            .map(|s| s.approx_bytes())
            .sum()
    }

    /// Number of count-only aggregate summaries persisted across all LRU
    /// slots (the overlay siblings of [`ExecContext::cached_subjoins`]).
    pub fn cached_subjoin_aggregates(&self) -> usize {
        self.state
            .lock()
            .expect("context cache poisoned")
            .slots
            .iter()
            .map(|s| s.agg_lattice.len())
            .sum()
    }

    /// LRU slot-eviction counters since the context was created (or since
    /// the last [`ExecContext::clear_cache`], which resets them along with
    /// the slots they describe).
    pub fn eviction_stats(&self) -> EvictionStats {
        self.state.lock().expect("context cache poisoned").evictions
    }

    /// Planner diagnostics for `(query, instance)`: the decomposition pivots
    /// with estimated cardinalities (building and caching the pair's
    /// [`JoinPlan`] if absent), the recorded top-level join order, and the
    /// actual sizes of every lattice entry currently materialised for the
    /// pair.
    pub fn plan_stats(&self, query: &JoinQuery, instance: &Instance) -> Result<PlanStats> {
        let fp = instance_fingerprint(query, instance);
        let plan = self.join_plan_at(fp, query, instance)?;
        type Actuals = FxHashMap<u32, usize>;
        let (actuals, agg_actuals, cached_bytes, replan): (
            Actuals,
            Actuals,
            usize,
            Option<ReplanStats>,
        ) = {
            let mut state = self.state.lock().expect("context cache poisoned");
            match state.slot_mut(fp) {
                Some(slot) => (
                    slot.lattice
                        .iter()
                        .map(|(&mask, result)| (mask, result.distinct_count()))
                        .collect(),
                    slot.agg_lattice
                        .iter()
                        .map(|(&mask, summary)| (mask, summary.distinct_count))
                        .collect(),
                    slot.approx_bytes(),
                    slot.replan.clone(),
                ),
                None => (FxHashMap::default(), FxHashMap::default(), 0, None),
            }
        };
        let m = query.num_relations();
        let mut nodes = Vec::new();
        if m <= PLAN_MAX_RELATIONS {
            for mask in 1u32..(1u32 << m) {
                nodes.push(PlanNodeStats {
                    mask,
                    pivot: plan.pivot(mask),
                    estimated_rows: plan.estimated_rows(mask),
                    actual_rows: actuals
                        .get(&mask)
                        .or_else(|| agg_actuals.get(&mask))
                        .copied(),
                    aggregated: !actuals.contains_key(&mask) && agg_actuals.contains_key(&mask),
                });
            }
        }
        Ok(PlanStats {
            cost_based: plan.is_cost_based(),
            top_order: plan.top_order().to_vec(),
            spine: plan.spine(),
            nodes,
            cached_masks: actuals.len(),
            cached_tuples: actuals.values().sum(),
            aggregated_masks: agg_actuals
                .keys()
                .filter(|mask| !actuals.contains_key(mask))
                .count(),
            cached_bytes,
            replan,
        })
    }

    /// Number of `(query, instance)` pairs currently holding an LRU slot.
    pub fn cached_instances(&self) -> usize {
        self.state
            .lock()
            .expect("context cache poisoned")
            .slots
            .len()
    }

    /// `(hits, misses)` of the persistent caches: a hit is a checkout,
    /// shared-join or delta-plan call that found warm data for its
    /// fingerprint.
    pub fn cache_stats(&self) -> (u64, u64) {
        let state = self.state.lock().expect("context cache poisoned");
        (state.hits, state.misses)
    }

    /// Drops every persisted cache slot (full joins, lattices, delta plans,
    /// join plans and dictionaries), releasing their memory.  The context remains usable;
    /// the next call simply starts cold.
    pub fn clear_cache(&self) {
        let mut state = self.state.lock().expect("context cache poisoned");
        state.slots.clear();
        state.evictions = EvictionStats::default();
    }

    // --- worker-pool access -------------------------------------------------

    /// Runs `f(0), …, f(tasks - 1)` on this context's worker pool, returning
    /// results in task order (see [`exec::par_map`]).
    pub fn par_map<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        exec::par_map(self.parallelism, tasks, f)
    }

    /// Range-partitioned worker-pool map (see [`exec::par_map_ranges`]).
    pub fn par_map_ranges<T, F>(&self, len: usize, min_chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        exec::par_map_ranges(self.parallelism, len, min_chunk, f)
    }
}

/// Carries a retained [`AttrDictionary`] across an update, or decides it
/// must be invalidated: when every *inserted* value already has a code, the
/// dictionary still covers the updated instance (deletes can only leave
/// harmless extra codes — the mapping stays an order-preserving injection)
/// and the updated instance is re-encoded through it; any unseen value
/// returns `None` and the dictionary rebuilds lazily.  The gross insert
/// list is checked rather than the net effect, so a covered batch can at
/// worst over-invalidate — never retain a dictionary missing a value.
fn refresh_dictionary(
    old: &AttrDictionary,
    query: &JoinQuery,
    instance: &Instance,
    batch: &UpdateBatch,
) -> Result<Option<DictionaryState>> {
    for op in batch.ops() {
        if let UpdateOp::Insert {
            relation, tuple, ..
        } = op
        {
            let attrs = instance.relation(*relation).attrs();
            for (pos, &attr) in attrs.iter().enumerate() {
                if old.code(attr, tuple[pos]).is_none() {
                    return Ok(None);
                }
            }
        }
    }
    let (encoded_query, encoded_instance) = old.encode_instance(query, instance)?;
    let fully_packable = fold_fully_packable(&encoded_instance, old);
    Ok(Some(DictionaryState {
        dictionary: old.clone(),
        encoded_query,
        encoded_instance,
        fully_packable,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{join, join_subset};

    fn star_instance(m: usize) -> (JoinQuery, Instance) {
        let q = JoinQuery::star(m, 16).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..m {
            for hub in 0..4u64 {
                for petal in 0..3u64 {
                    inst.relation_mut(r)
                        .add(vec![hub, (petal + r as u64) % 16], 1 + (hub % 2))
                        .unwrap();
                }
            }
        }
        (q, inst)
    }

    #[test]
    fn fingerprint_tracks_instance_content() {
        let (q, inst) = star_instance(3);
        let fp = instance_fingerprint(&q, &inst);
        assert_eq!(fp, instance_fingerprint(&q, &inst));
        let mut edited = inst.clone();
        edited.relation_mut(0).add(vec![9, 9], 1).unwrap();
        assert_ne!(fp, instance_fingerprint(&q, &edited));
        // Frequency changes alone must also change the fingerprint.
        let mut heavier = inst.clone();
        heavier.relation_mut(0).add(vec![0, 0], 1).unwrap();
        assert_ne!(fp, instance_fingerprint(&q, &heavier));
    }

    #[test]
    fn context_joins_match_free_functions() {
        let (q, inst) = star_instance(3);
        let ctx = ExecContext::sequential();
        let a = ctx.join(&q, &inst).unwrap();
        let b = join(&q, &inst).unwrap();
        assert_eq!(a, b);
        let sub_ctx = ctx.join_subset(&q, &inst, &[0, 2]).unwrap();
        let sub_free = join_subset(&q, &inst, &[0, 2]).unwrap();
        assert_eq!(sub_ctx, sub_free);
        assert_eq!(ctx.join_size(&q, &inst).unwrap(), a.total());
    }

    #[test]
    fn shared_join_is_cached_and_identical() {
        let (q, inst) = star_instance(3);
        let ctx = ExecContext::sequential();
        let cold = ctx.shared_join(&q, &inst).unwrap();
        let warm = ctx.shared_join(&q, &inst).unwrap();
        // Same Arc, not merely an equal value.
        assert!(Arc::ptr_eq(&cold, &warm));
        assert_eq!(cold.as_ref(), &join(&q, &inst).unwrap());
        let (hits, misses) = ctx.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn lattice_survives_checkin_checkout_roundtrip() {
        let (q, inst) = star_instance(4);
        let ctx = ExecContext::sequential();
        let cache = ctx.subjoin_cache(&q, &inst).unwrap();
        cache
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        let populated = cache.cached_count();
        assert_eq!(populated, (1 << 4) - 2);
        ctx.retain_subjoin_cache(cache);
        assert_eq!(ctx.cached_subjoins(), populated);
        // Warm checkout starts with everything materialised — and because
        // checkout clones (Arc-shared) rather than moves, a second
        // concurrent checkout is warm too.
        let warm = ctx.subjoin_cache(&q, &inst).unwrap();
        assert_eq!(warm.cached_count(), populated);
        let concurrent = ctx.subjoin_cache(&q, &inst).unwrap();
        assert_eq!(concurrent.cached_count(), populated);
        for mask in 1u32..((1 << 4) - 1) {
            assert!(
                warm.get(mask).is_some(),
                "mask {mask:#b} missing after reuse"
            );
        }
        ctx.retain_subjoin_cache(warm);
        ctx.retain_subjoin_cache(concurrent);
        assert_eq!(ctx.cached_subjoins(), populated, "merge must not clobber");
        let (hits, _) = ctx.cache_stats();
        assert!(hits >= 2);
    }

    #[test]
    fn multiple_instances_share_the_lru_without_clobbering() {
        let (q, inst) = star_instance(3);
        let (q2, inst2) = star_instance(4);
        let ctx = ExecContext::sequential();
        let cache = ctx.subjoin_cache(&q, &inst).unwrap();
        cache
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        let first = cache.cached_count();
        ctx.retain_subjoin_cache(cache);
        // A different pair checks out cold, claims its own slot, and does
        // NOT evict the first instance while capacity remains.
        let other = ctx.subjoin_cache(&q2, &inst2).unwrap();
        assert_eq!(other.cached_count(), 0);
        ctx.retain_subjoin_cache(other);
        assert_eq!(ctx.cached_instances(), 2);
        let back = ctx.subjoin_cache(&q, &inst).unwrap();
        assert_eq!(back.cached_count(), first, "first instance stays warm");
    }

    #[test]
    fn single_slot_context_reproduces_the_historical_eviction() {
        let (q, inst) = star_instance(3);
        let (q2, inst2) = star_instance(4);
        let ctx = ExecContext::sequential().with_cache_slots(1);
        assert_eq!(ctx.cache_slots(), 1);
        let cache = ctx.subjoin_cache(&q, &inst).unwrap();
        cache
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        ctx.retain_subjoin_cache(cache);
        assert!(ctx.cached_subjoins() > 0);
        // A different pair checks out cold and evicts on check-in.
        let other = ctx.subjoin_cache(&q2, &inst2).unwrap();
        assert_eq!(other.cached_count(), 0);
        ctx.retain_subjoin_cache(other);
        assert_eq!(ctx.cached_instances(), 1);
        let back = ctx.subjoin_cache(&q, &inst).unwrap();
        assert_eq!(back.cached_count(), 0, "old instance must re-start cold");
    }

    #[test]
    fn lru_evicts_the_least_recently_used_slot_past_capacity() {
        let (q, base) = star_instance(3);
        // Four distinct instances (distinct fingerprints) on a 3-slot LRU.
        let variants: Vec<Instance> = (0..4u64)
            .map(|v| {
                let mut inst = base.clone();
                inst.relation_mut(0).add(vec![9, v % 8], 1).unwrap();
                inst
            })
            .collect();
        let ctx = ExecContext::sequential().with_cache_slots(3);
        for inst in &variants[..3] {
            let cache = ctx.subjoin_cache(&q, inst).unwrap();
            cache
                .populate_proper_subsets(Parallelism::SEQUENTIAL)
                .unwrap();
            ctx.retain_subjoin_cache(cache);
        }
        assert_eq!(ctx.cached_instances(), 3);
        // Touch instance 0 so instance 1 becomes the LRU victim.
        assert!(ctx.subjoin_cache(&q, &variants[0]).unwrap().cached_count() > 0);
        let cache = ctx.subjoin_cache(&q, &variants[3]).unwrap();
        cache
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        ctx.retain_subjoin_cache(cache);
        assert_eq!(ctx.cached_instances(), 3, "capacity bound holds");
        // Instance 1 (least recently used) was evicted; 0, 2 and 3 are warm.
        assert_eq!(
            ctx.subjoin_cache(&q, &variants[1]).unwrap().cached_count(),
            0
        );
        for &warm in &[0usize, 2, 3] {
            assert!(
                ctx.subjoin_cache(&q, &variants[warm])
                    .unwrap()
                    .cached_count()
                    > 0,
                "instance {warm} must stay warm"
            );
        }
    }

    #[test]
    fn byte_accounting_and_eviction_counters_audit_the_lru() {
        let (q, base) = star_instance(3);
        let variants: Vec<Instance> = (0..2u64)
            .map(|v| {
                let mut inst = base.clone();
                inst.relation_mut(0).add(vec![9, v % 8], 1).unwrap();
                inst
            })
            .collect();
        let ctx = ExecContext::sequential().with_cache_slots(1);
        assert_eq!(ctx.cached_subjoin_bytes(), 0);
        assert_eq!(ctx.eviction_stats(), EvictionStats::default());
        let cache = ctx.subjoin_cache(&q, &variants[0]).unwrap();
        cache
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        ctx.retain_subjoin_cache(cache);
        let resident = ctx.cached_subjoin_bytes();
        assert!(resident > 0, "populated lattice has resident bytes");
        // Checking a second fingerprint into a 1-slot LRU evicts the first,
        // and the counters record exactly what was discarded (checkouts
        // stay eviction-free; only check-in claims a slot).
        let entries = ctx.cached_subjoins();
        ctx.retain_subjoin_cache(ctx.subjoin_cache(&q, &variants[1]).unwrap());
        let stats = ctx.eviction_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.evicted_entries, entries);
        assert_eq!(stats.evicted_bytes, resident);
        // clear_cache resets both the slots and the audit trail.
        ctx.clear_cache();
        assert_eq!(ctx.cached_subjoin_bytes(), 0);
        assert_eq!(ctx.eviction_stats(), EvictionStats::default());
    }

    #[test]
    fn aggregate_overlay_persists_in_the_slot_and_surfaces_in_plan_stats() {
        use crate::plan::AggMode;
        let (q, inst) = star_instance(3);
        let m = q.num_relations();
        let full = (1u32 << m) - 1;
        let ctx = ExecContext::sequential()
            .with_plan_config(PlanConfig::default().with_agg_mode(AggMode::Always));
        let cache = ctx.subjoin_cache(&q, &inst).unwrap();
        assert_eq!(cache.agg_mode, AggMode::Always);
        let terminal = full & !(1u32); // proper mask containing relation m-1
        let expected = join_subset(&q, &inst, &[1, 2]).unwrap().total();
        assert_eq!(
            cache
                .max_group_weight(terminal, &[], Parallelism::SEQUENTIAL)
                .unwrap(),
            expected
        );
        assert_eq!(cache.cached_agg_count(), 1);
        ctx.retain_subjoin_cache(cache);
        // The overlay rode the check-in: a warm checkout still holds it, and
        // plan_stats reports the mask as aggregated with its distinct count.
        let warm = ctx.subjoin_cache(&q, &inst).unwrap();
        assert_eq!(warm.cached_agg_count(), 1);
        ctx.retain_subjoin_cache(warm);
        let stats = ctx.plan_stats(&q, &inst).unwrap();
        assert_eq!(stats.aggregated_masks, 1);
        assert!(stats.cached_bytes > 0);
        let node = stats
            .nodes
            .iter()
            .find(|n| n.mask == terminal)
            .expect("node present");
        assert!(node.aggregated);
        assert!(node.actual_rows.is_some());
        assert!(stats.nodes.iter().filter(|n| n.aggregated).count() == 1);
    }

    #[test]
    fn delta_plan_is_cached_per_slot_and_invalidated_by_edits() {
        let (q, inst) = star_instance(3);
        let ctx = ExecContext::sequential();
        let plan = ctx.delta_plan(&q, &inst).unwrap();
        let again = ctx.delta_plan(&q, &inst).unwrap();
        assert!(Arc::ptr_eq(&plan, &again), "same Arc on a warm slot");
        // Plan building populated (and persisted) lattice prefixes.
        assert!(ctx.cached_subjoins() > 0);
        // An edited instance gets a fresh plan under its own fingerprint.
        let mut edited = inst.clone();
        edited.relation_mut(0).add(vec![5, 5], 1).unwrap();
        let other = ctx.delta_plan(&q, &edited).unwrap();
        assert!(!Arc::ptr_eq(&plan, &other));
        // And the context-level join-size delta agrees with re-joining.
        let edit = crate::instance::NeighborEdit::Remove {
            relation: 0,
            tuple: vec![0, 0],
        };
        let base = join(&q, &inst).unwrap().total();
        let delta = ctx.join_size_delta(&q, &inst, &edit).unwrap();
        assert_eq!(
            delta.apply(base),
            join(&q, &inst.apply_edit(&edit).unwrap()).unwrap().total()
        );
    }

    #[test]
    fn join_plan_is_shared_per_slot_and_survives_checkin() {
        let (q, inst) = star_instance(3);
        let ctx = ExecContext::sequential();
        // Checkout builds the cost-based plan and hands it to the cache.
        let cache = ctx.subjoin_cache(&q, &inst).unwrap();
        assert!(cache.plan().is_cost_based());
        let plan_in_cache = Arc::clone(cache.plan());
        ctx.retain_subjoin_cache(cache);
        // The plan persisted with the slot: later lookups return the same Arc.
        let again = ctx.join_plan(&q, &inst).unwrap();
        assert!(Arc::ptr_eq(&plan_in_cache, &again));
        let warm = ctx.subjoin_cache(&q, &inst).unwrap();
        assert!(Arc::ptr_eq(&plan_in_cache, warm.plan()));
        // A plan lookup on an unknown pair never claims an LRU slot.
        let mut other = inst.clone();
        other.relation_mut(0).add(vec![9, 9], 1).unwrap();
        let before = ctx.cached_instances();
        let _ = ctx.join_plan(&q, &other).unwrap();
        assert_eq!(ctx.cached_instances(), before);
    }

    #[test]
    fn plan_stats_report_orders_and_materialised_sizes() {
        let (q, inst) = star_instance(4);
        let ctx = ExecContext::sequential();
        let cold = ctx.plan_stats(&q, &inst).unwrap();
        assert!(cold.cost_based);
        assert_eq!(cold.top_order.len(), 4);
        assert_eq!(cold.spine.len(), 4);
        assert_eq!(cold.nodes.len(), (1 << 4) - 1);
        assert_eq!(cold.cached_masks, 0);
        assert_eq!(cold.cached_tuples, 0);
        // Populate the lattice; the stats now carry actual sizes.
        let cache = ctx.subjoin_cache(&q, &inst).unwrap();
        cache
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        ctx.retain_subjoin_cache(cache);
        let warm = ctx.plan_stats(&q, &inst).unwrap();
        assert_eq!(warm.cached_masks, (1 << 4) - 2);
        assert_eq!(warm.cached_tuples, ctx.cached_subjoin_tuples());
        assert!(warm.cached_tuples > 0);
        let materialised = warm
            .nodes
            .iter()
            .filter(|n| n.actual_rows.is_some())
            .count();
        assert_eq!(materialised, warm.cached_masks);
        for node in &warm.nodes {
            assert!(node.estimated_rows.is_some());
            assert!(node.mask & (1 << node.pivot) != 0, "pivot inside mask");
        }
    }

    #[test]
    fn clear_cache_releases_entries() {
        let (q, inst) = star_instance(3);
        let ctx = ExecContext::sequential();
        ctx.shared_join(&q, &inst).unwrap();
        let cache = ctx.subjoin_cache(&q, &inst).unwrap();
        cache
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        ctx.retain_subjoin_cache(cache);
        assert!(ctx.cached_subjoins() > 0);
        ctx.clear_cache();
        assert_eq!(ctx.cached_subjoins(), 0);
        // Still usable afterwards.
        assert_eq!(
            ctx.shared_join(&q, &inst).unwrap().as_ref(),
            &join(&q, &inst).unwrap()
        );
    }

    #[test]
    fn join_dict_is_cached_and_byte_identical_to_join() {
        // Wide sparse values so the dictionary actually shrinks domains.
        let schema = crate::attr::Schema::new(vec![
            crate::attr::Attribute::new("a", 1 << 40),
            crate::attr::Attribute::new("b", 1 << 40),
            crate::attr::Attribute::new("c", 1 << 40),
        ]);
        let q = JoinQuery::new(
            schema,
            vec![vec![AttrId(0), AttrId(1)], vec![AttrId(1), AttrId(2)]],
        )
        .unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for i in 0..6u64 {
            inst.relation_mut(0)
                .add(vec![i * 7_000_000_000, (i % 3) * 9_999_999_937], 1 + i % 2)
                .unwrap();
            inst.relation_mut(1)
                .add(vec![(i % 3) * 9_999_999_937, i * 123_456_789_123], 2)
                .unwrap();
        }
        for &threads in &[1usize, 4] {
            let ctx = ExecContext::with_threads(threads).with_min_par_instance(1);
            let raw = ctx.join(&q, &inst).unwrap();
            let dict = ctx.join_dict(&q, &inst).unwrap();
            assert_eq!(dict, raw, "threads {threads}");
            // The dictionary state is built once per fingerprint.
            let a = ctx.attr_dictionary(&q, &inst).unwrap();
            let b = ctx.attr_dictionary(&q, &inst).unwrap();
            assert!(Arc::ptr_eq(&a, &b), "same Arc on a warm slot");
            assert!(a.fully_packable(), "6 codes per attr pack easily");
            // Mutation changes the fingerprint: a fresh dictionary is built.
            let mut edited = inst.clone();
            edited.relation_mut(0).add(vec![42, 43], 1).unwrap();
            let c = ctx.attr_dictionary(&q, &edited).unwrap();
            assert!(!Arc::ptr_eq(&a, &c));
            assert_eq!(
                ctx.join_dict(&q, &edited).unwrap(),
                ctx.join(&q, &edited).unwrap()
            );
        }
    }

    #[test]
    fn small_instance_threshold_is_configurable() {
        let (_, inst) = star_instance(3);
        let big = ExecContext::with_threads(4).with_min_par_instance(usize::MAX);
        assert!(big.is_small_instance(&inst));
        assert!(big.effective_parallelism(&inst).is_sequential());
        let tiny = ExecContext::with_threads(4).with_min_par_instance(1);
        assert!(!tiny.is_small_instance(&inst));
        assert_eq!(tiny.effective_parallelism(&inst).get(), 4);
    }

    fn star_batch() -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        batch.insert(0, vec![2, 8], 3);
        batch.delete(1, vec![0, 1], 1);
        batch.insert(2, vec![5, 5], 1);
        batch
    }

    #[test]
    fn apply_updates_migrates_the_warm_slot() {
        let (q, base) = star_instance(3);
        let batch = star_batch();
        let ctx = ExecContext::sequential();
        // Warm everything a slot can hold.
        let mut inst = base.clone();
        let cache = ctx.subjoin_cache(&q, &inst).unwrap();
        cache
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        ctx.retain_subjoin_cache(cache);
        ctx.shared_join(&q, &inst).unwrap();
        ctx.delta_plan(&q, &inst).unwrap();
        let report = ctx.apply_updates(&q, &mut inst, &batch).unwrap();
        assert!(report.warm);
        assert_ne!(report.old_fingerprint, report.new_fingerprint);
        assert_eq!(report.new_fingerprint, instance_fingerprint(&q, &inst));
        assert!(report.stats.maintained_masks > 0);
        // The migrated slot is warm under the new fingerprint: a checkout
        // finds every mask, the shared join is served without a join, and
        // the delta plan survived.
        assert_eq!(ctx.cached_instances(), 1);
        let warm = ctx.subjoin_cache(&q, &inst).unwrap();
        for mask in 1u32..(1 << 3) {
            assert!(warm.get(mask).is_some(), "mask {mask:#b} went cold");
        }
        // Every maintained value equals the cold recomputation.
        let mut oracle = base.clone();
        stream::apply_batch(&q, &mut oracle, &batch).unwrap();
        assert_eq!(inst, oracle);
        for mask in 1u32..(1 << 3) {
            let rels: Vec<usize> = (0..3).filter(|&r| mask & (1 << r) != 0).collect();
            assert_eq!(
                warm.get(mask).unwrap().as_ref(),
                &join_subset(&q, &oracle, &rels).unwrap(),
                "mask {mask:#b} diverged from rebuild"
            );
        }
        assert_eq!(
            ctx.shared_join(&q, &inst).unwrap().as_ref(),
            &join(&q, &oracle).unwrap()
        );
    }

    #[test]
    fn apply_updates_without_a_slot_is_cold_and_correct() {
        let (q, base) = star_instance(3);
        let batch = star_batch();
        let ctx = ExecContext::sequential();
        let mut inst = base.clone();
        let report = ctx.apply_updates(&q, &mut inst, &batch).unwrap();
        assert!(!report.warm);
        assert_eq!(report.stats, UpdateStats::default());
        let mut oracle = base.clone();
        stream::apply_batch(&q, &mut oracle, &batch).unwrap();
        assert_eq!(inst, oracle);
    }

    #[test]
    fn apply_updates_validation_failure_keeps_the_slot() {
        let (q, base) = star_instance(3);
        let ctx = ExecContext::sequential();
        let mut inst = base.clone();
        ctx.shared_join(&q, &inst).unwrap();
        let mut bad = UpdateBatch::new();
        bad.delete(0, vec![15, 15], 1); // absent tuple: underflow
        let err = ctx.apply_updates(&q, &mut inst, &bad).unwrap_err();
        assert_eq!(err, crate::RelationalError::FrequencyUnderflow);
        assert_eq!(inst, base, "instance untouched on validation error");
        // A failed batch must not cost the warm slot.
        let (hits_before, _) = ctx.cache_stats();
        ctx.shared_join(&q, &inst).unwrap();
        let (hits_after, _) = ctx.cache_stats();
        assert_eq!(hits_after, hits_before + 1, "slot survived the bad batch");
    }

    #[test]
    fn dictionary_survives_covered_updates_and_dies_on_unseen_values() {
        // Wide values so the dictionary actually matters.
        let q = JoinQuery::two_table(u64::MAX, u64::MAX, u64::MAX);
        let mut inst = Instance::empty_for(&q).unwrap();
        for i in 0..6u64 {
            inst.relation_mut(0)
                .add(vec![i * 7_000_000_000, (i % 3) * 9_999_999_937], 1)
                .unwrap();
            inst.relation_mut(1)
                .add(vec![(i % 3) * 9_999_999_937, i * 123_456_789_123], 2)
                .unwrap();
        }
        let ctx = ExecContext::sequential();
        let before = ctx.attr_dictionary(&q, &inst).unwrap();
        // Covered batch: every value already has a code (tuple reweights).
        let mut covered = UpdateBatch::new();
        covered.insert(0, vec![0, 0], 5);
        covered.delete(1, vec![0, 0], 1);
        let report = ctx.apply_updates(&q, &mut inst, &covered).unwrap();
        assert!(report.warm);
        assert!(report.dictionary_retained);
        let after = ctx.attr_dictionary(&q, &inst).unwrap();
        assert_eq!(after.dictionary, before.dictionary, "codes unchanged");
        // Regression: the retained state must encode the *updated*
        // instance, not serve the pre-update encoding.
        assert_eq!(
            after.encoded_instance.relation(0).freq(&[0, 0]),
            inst.relation(0).freq(&[0, 0])
        );
        assert_eq!(
            ctx.join_dict(&q, &inst).unwrap(),
            ctx.join(&q, &inst).unwrap(),
            "dict path must reflect the update"
        );
        // Unseen value: the dictionary is invalidated, then rebuilt lazily
        // with the new code present — never served stale.
        let mut unseen = UpdateBatch::new();
        unseen.insert(0, vec![42, 9_999_999_937], 1);
        let report = ctx.apply_updates(&q, &mut inst, &unseen).unwrap();
        assert!(report.warm);
        assert!(!report.dictionary_retained);
        let rebuilt = ctx.attr_dictionary(&q, &inst).unwrap();
        assert!(rebuilt.dictionary.code(AttrId(0), 42).is_some());
        assert_eq!(
            ctx.join_dict(&q, &inst).unwrap(),
            ctx.join(&q, &inst).unwrap(),
            "rebuilt dict path must see the new value"
        );
    }

    #[test]
    fn delta_plan_survives_migration_and_stays_correct() {
        let (q, base) = star_instance(3);
        let batch = star_batch();
        let ctx = ExecContext::sequential();
        let mut inst = base.clone();
        ctx.delta_plan(&q, &inst).unwrap();
        let report = ctx.apply_updates(&q, &mut inst, &batch).unwrap();
        assert!(report.warm);
        // The migrated plan is served from the slot (same Arc on lookup)…
        let migrated = ctx.delta_plan(&q, &inst).unwrap();
        let again = ctx.delta_plan(&q, &inst).unwrap();
        assert!(Arc::ptr_eq(&migrated, &again));
        // …and prices edits over the *updated* instance exactly like a
        // cold plan over the same data.
        let cold_ctx = ExecContext::sequential();
        let cold = cold_ctx.delta_plan(&q, &inst).unwrap();
        let edit = NeighborEdit::Add {
            relation: 0,
            tuple: vec![3, 3],
        };
        assert_eq!(
            migrated.join_size_delta(&edit).unwrap(),
            cold.join_size_delta(&edit).unwrap()
        );
    }
}
