//! Streaming ingestion: semi-naive batch delta maintenance of the sub-join
//! lattice.
//!
//! The delta module ([`crate::delta`]) prices a *single* neighbour edit at a
//! hash probe, but real write traffic arrives as **batches** of inserts and
//! deletes across relations, and historically any real update orphaned every
//! warm cache under the old instance fingerprint and forced a full lattice
//! rebuild.  This module makes an [`UpdateBatch`] a first-class operation:
//! the cached `2^m` sub-join intermediates (and the shared full join, which
//! is just the full-mask entry) are **updated in place**, semi-naive style,
//! instead of rebuilt.
//!
//! # The maintenance identity
//!
//! Joins over frequency-annotated relations are multilinear: for a relation
//! subset `E` and an update `R_i ← R_i + Δ_i`,
//!
//! ```text
//! J_E(…, R_i + Δ_i, …) = J_E(…, R_i, …) + Δ_i ⋈ J_{E∖{i}}
//! ```
//!
//! because every output row uses exactly one tuple of relation `i` and its
//! weight is linear in that tuple's frequency.  Processing the batch one
//! relation at a time (ascending index) telescopes: when relation `i` is
//! handled, relations `< i` are already at their new contents and relations
//! `> i` still at their old ones, and every cached mask `E ∋ i` gains
//! `Δ_i⁺ ⋈ J_{E∖{i}}` and loses `Δ_i⁻ ⋈ J_{E∖{i}}` — where `J_{E∖{i}}` is
//! the *current* (mixed-state) value, read straight from the lattice when
//! cached and joined from the partially-updated instance otherwise.  Masks
//! without bit `i` are untouched by step `i`.  Deletes are weight
//! retraction: the removed delta join is subtracted row by row, and rows
//! whose weight reaches zero leave the entry, exactly as they would never
//! have been produced by a rebuild.
//!
//! # Indexed in-place patching
//!
//! Entries are patched **in place** through per-entry streaming indexes
//! (`EntryIndex`, cached across batches in the context's LRU slot): a
//! full-tuple → row map locates the row a delta touches, and lazily-built
//! key adjacencies on the parent entry enumerate exactly the rows a delta
//! tuple joins with.  A batch therefore costs `O(Δ × matches)` — not a scan
//! of any entry or parent — which is what makes single-op batches orders of
//! magnitude cheaper than a rebuild (`stream/*` rows of `BENCH_join.json`).
//! Retracted rows are swap-removed; physical row order diverges from a
//! rebuild's probe order, which is unobservable because every public
//! [`JoinResult`] surface sorts on emit.  A cost guard drops a mask to the
//! rebuild fallback when its delta-join output rivals the entry size, where
//! the batched probe loops of a fresh sub-join are cheaper than row-at-a-time
//! patching — large batches degrade to a rebuild instead of pathologically
//! exceeding one.
//!
//! Patching is also bounded **across** masks: the per-relation telescoping
//! pays one delta join per cached mask per touched relation, so a batch
//! that rewrites a sizeable share of its relations costs roughly
//! `relations_touched ×` a straight rebuild no matter how good each patch
//! is.  Once the net batch crosses that regime
//! (`BULK_REBUILD_MIN_ROWS` changed tuples and at least
//! `1/BULK_REBUILD_FACTOR` of the touched relations' rows), maintenance
//! skips patching entirely and recomputes every affected mask from the
//! updated instance through the slot's cost-based plan chain — ascending
//! mask order, memoising shared chain prefixes — which is what keeps the
//! largest `stream/*` batches of `BENCH_join.json` from losing to a cold
//! rebuild.
//!
//! # Determinism and the rebuild oracle
//!
//! A maintained entry holds exactly the weighted tuple set a from-scratch
//! rebuild of the updated instance produces: the additive identity above is
//! exact over `Z≥0` weights, and every observable surface of
//! [`JoinResult`] sorts on emit, so downstream bytes are identical to a
//! cold rebuild at every thread count, morsel size and schedule.  The
//! rebuild path stays available as the cross-check oracle
//! ([`apply_batch`] + a fresh context), and `tests/properties.rs` asserts
//! maintained ≡ rebuilt ≡ naive per mask.
//!
//! The single caveat is **saturation**: engine weights saturate at
//! `u128::MAX` instead of overflowing, and subtraction from a saturated
//! value is not invertible.  Maintenance therefore watches for saturated
//! weights (and for additions that would saturate); any affected mask is
//! dropped from the memo and recomputed from the fully-updated instance at
//! the end of the batch — falling back to exactly what a rebuild would
//! store ([`UpdateStats::rebuilt_masks`] counts these).
//!
//! The context-level entry point is `ExecContext::apply_updates`
//! ([`crate::context`]), which additionally migrates the LRU slot from the
//! old instance fingerprint to the new one so the maintained state stays
//! reachable.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::attr::AttrId;
use crate::exec::Parallelism;
use crate::hash::{FxHashMap, FxHashSet};
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::join::{hash_join_step_with, join_subset_impl, JoinResult};
use crate::plan::JoinPlan;
use crate::relation::Relation;
use crate::tuple::{intersect_attrs, project_into, TupleKey, Value};
use crate::{RelationalError, Result};

/// One insert or delete of a streaming update batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Add `count` copies of `tuple` to relation `relation`.
    Insert {
        /// Index of the relation receiving the tuples.
        relation: usize,
        /// The tuple, in the relation's (sorted) attribute order.
        tuple: Vec<Value>,
        /// Number of copies to add.
        count: u64,
    },
    /// Remove `count` copies of `tuple` from relation `relation`.
    Delete {
        /// Index of the relation losing the tuples.
        relation: usize,
        /// The tuple, in the relation's (sorted) attribute order.
        tuple: Vec<Value>,
        /// Number of copies to remove.
        count: u64,
    },
}

impl UpdateOp {
    /// The relation the op touches.
    pub fn relation(&self) -> usize {
        match self {
            UpdateOp::Insert { relation, .. } | UpdateOp::Delete { relation, .. } => *relation,
        }
    }

    /// The op with insert and delete swapped (same relation, tuple, count).
    pub fn inverse(&self) -> UpdateOp {
        match self {
            UpdateOp::Insert {
                relation,
                tuple,
                count,
            } => UpdateOp::Delete {
                relation: *relation,
                tuple: tuple.clone(),
                count: *count,
            },
            UpdateOp::Delete {
                relation,
                tuple,
                count,
            } => UpdateOp::Insert {
                relation: *relation,
                tuple: tuple.clone(),
                count: *count,
            },
        }
    }
}

/// A batch of inserts and deletes applied **atomically** to an instance.
///
/// The batch's semantics are its *net* effect: per `(relation, tuple)` the
/// inserted and deleted counts are accumulated and only the difference is
/// applied, so a tuple inserted and deleted within one batch cancels out.
/// Validation ([`UpdateBatch::check`]) is against the net effect too — a
/// delete may exceed the current frequency as long as inserts in the same
/// batch cover the difference.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Appends an insert of `count` copies of `tuple` into `relation`.
    pub fn insert(&mut self, relation: usize, tuple: Vec<Value>, count: u64) -> &mut Self {
        self.ops.push(UpdateOp::Insert {
            relation,
            tuple,
            count,
        });
        self
    }

    /// Appends a delete of `count` copies of `tuple` from `relation`.
    pub fn delete(&mut self, relation: usize, tuple: Vec<Value>, count: u64) -> &mut Self {
        self.ops.push(UpdateOp::Delete {
            relation,
            tuple,
            count,
        });
        self
    }

    /// Appends an arbitrary op.
    pub fn push(&mut self, op: UpdateOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The ops in insertion order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The inverse batch: every insert becomes a delete and vice versa.
    /// Applying a batch and then its inverse restores the original instance
    /// (and, through maintenance, the original fingerprint and lattice
    /// values).
    pub fn inverse(&self) -> UpdateBatch {
        UpdateBatch {
            ops: self.ops.iter().map(UpdateOp::inverse).collect(),
        }
    }

    /// Validates the batch against `(query, instance)` without applying it:
    /// relation indices in range, tuple arities and domains correct, and the
    /// net per-tuple frequencies neither underflow below zero nor overflow
    /// `u64`.
    pub fn check(&self, query: &JoinQuery, instance: &Instance) -> Result<()> {
        self.net_deltas(query, instance).map(|_| ())
    }

    /// Folds the ops into per-relation **net** added/removed tuple maps,
    /// validating everything [`UpdateBatch::check`] promises along the way.
    pub(crate) fn net_deltas(
        &self,
        query: &JoinQuery,
        instance: &Instance,
    ) -> Result<Vec<RelationDelta>> {
        let m = query.num_relations();
        if instance.num_relations() != m {
            return Err(RelationalError::RelationCountMismatch {
                expected: m,
                got: instance.num_relations(),
            });
        }
        let schema = query.schema();
        // Signed net count per (relation, tuple), accumulated in i128 so no
        // intermediate mix of u64 inserts and deletes can overflow.
        let mut nets: Vec<BTreeMap<Vec<Value>, i128>> = vec![BTreeMap::new(); m];
        for op in &self.ops {
            let (relation, tuple, signed) = match op {
                UpdateOp::Insert {
                    relation,
                    tuple,
                    count,
                } => (*relation, tuple, *count as i128),
                UpdateOp::Delete {
                    relation,
                    tuple,
                    count,
                } => (*relation, tuple, -(*count as i128)),
            };
            if relation >= m {
                return Err(RelationalError::InvalidUpdate(format!(
                    "relation index {relation} out of range for a {m}-relation query"
                )));
            }
            let attrs = instance.relation(relation).attrs();
            if tuple.len() != attrs.len() {
                return Err(RelationalError::ArityMismatch {
                    expected: attrs.len(),
                    got: tuple.len(),
                });
            }
            for (pos, &attr) in attrs.iter().enumerate() {
                let domain = schema.domain_size(attr)?;
                if tuple[pos] >= domain {
                    return Err(RelationalError::ValueOutOfDomain {
                        attr: attr.0,
                        value: tuple[pos],
                        domain_size: domain,
                    });
                }
            }
            if signed != 0 {
                *nets[relation].entry(tuple.clone()).or_insert(0) += signed;
            }
        }
        let mut deltas = Vec::with_capacity(m);
        for (relation, net) in nets.into_iter().enumerate() {
            let rel = instance.relation(relation);
            let mut added = BTreeMap::new();
            let mut removed = BTreeMap::new();
            for (tuple, signed) in net {
                let old = rel.freq(&tuple) as i128;
                let new = old + signed;
                if new < 0 {
                    return Err(RelationalError::FrequencyUnderflow);
                }
                if new > u64::MAX as i128 {
                    return Err(RelationalError::FrequencyOverflow);
                }
                match signed.cmp(&0) {
                    std::cmp::Ordering::Greater => {
                        added.insert(tuple, signed as u64);
                    }
                    std::cmp::Ordering::Less => {
                        removed.insert(tuple, (-signed) as u64);
                    }
                    std::cmp::Ordering::Equal => {}
                }
            }
            deltas.push(RelationDelta {
                relation,
                added,
                removed,
            });
        }
        Ok(deltas)
    }
}

/// The validated net effect of a batch on one relation: disjoint added and
/// removed tuple maps (net counts, never zero).
#[derive(Debug, Clone)]
pub(crate) struct RelationDelta {
    relation: usize,
    added: BTreeMap<Vec<Value>, u64>,
    removed: BTreeMap<Vec<Value>, u64>,
}

impl RelationDelta {
    /// Index of the relation the delta touches.
    pub(crate) fn relation(&self) -> usize {
        self.relation
    }

    /// The net added tuples (tuple → count, counts never zero) — what an
    /// insert-only statistics sketch can absorb directly.
    pub(crate) fn added(&self) -> &BTreeMap<Vec<Value>, u64> {
        &self.added
    }

    /// Number of distinct tuples the batch nets out to removing weight from
    /// (insert-only sketches can only over-estimate past any removal).
    pub(crate) fn removed_rows(&self) -> usize {
        self.removed.len()
    }

    /// Whether the relation's contents are unchanged by the batch.
    fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of distinct tuples whose frequency the batch changes (net).
    fn net_rows(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Applies the net delta to the live relation.  Infallible after
    /// [`UpdateBatch::net_deltas`] validated the final frequencies.
    fn apply_to(&self, rel: &mut Relation) {
        for (tuple, &count) in &self.added {
            let new = rel.freq(tuple).checked_add(count).expect("validated");
            rel.set(tuple.clone(), new).expect("validated arity");
        }
        for (tuple, &count) in &self.removed {
            let new = rel.freq(tuple).checked_sub(count).expect("validated");
            rel.set(tuple.clone(), new).expect("validated arity");
        }
    }
}

/// Statistics of one maintained batch, surfaced through
/// `ExecContext::apply_updates` for observability and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Lattice entries patched in place via the semi-naive identity.
    pub maintained_masks: usize,
    /// Lattice entries that hit the saturation guard and were recomputed
    /// from the updated instance instead (the rebuild fallback).
    pub rebuilt_masks: usize,
    /// Relations whose contents actually changed (net).
    pub relations_touched: usize,
}

/// Applies `batch` to `instance` with **no** cache maintenance — the plain
/// mutation path, also the rebuild-from-scratch oracle's first half.
/// Validates first; the instance is untouched on error.
pub fn apply_batch(query: &JoinQuery, instance: &mut Instance, batch: &UpdateBatch) -> Result<()> {
    let deltas = batch.net_deltas(query, instance)?;
    apply_net_deltas(instance, &deltas);
    Ok(())
}

/// Applies pre-validated net deltas to the live instance.  Infallible after
/// [`UpdateBatch::net_deltas`] validated the final frequencies.
pub(crate) fn apply_net_deltas(instance: &mut Instance, deltas: &[RelationDelta]) {
    for delta in deltas {
        delta.apply_to(instance.relation_mut(delta.relation));
    }
}

/// Applies a batch's validated net `deltas` (from
/// [`UpdateBatch::net_deltas`], computed once by the caller and shared with
/// the sketch patch) to `instance` while maintaining `memo` — a sub-join
/// lattice keyed by relation-subset bitmask (the full-join entry rides
/// along under the full mask) — in place via the semi-naive identity.
///
/// On success every surviving memo entry equals (as a weighted tuple set)
/// the corresponding sub-join of the updated instance.  Entries that hit the
/// saturation guard are recomputed from scratch; nothing is ever served
/// stale.
///
/// `plan` routes every fallback sub-join (missing parents, post-batch
/// rebuilds) through the cost-based decomposition chain — reusing the
/// deepest memoised ancestor and joining one pivot relation per step —
/// instead of the naive size-ordered fold over all of the mask's relations.
/// This is what keeps very large batches (where the cost guard degrades
/// most masks to rebuilds) from losing to a cold planner rebuild.  Without
/// a cost-based plan the naive fold is used, as before.
pub(crate) fn maintain_memo(
    query: &JoinQuery,
    instance: &mut Instance,
    memo: &mut FxHashMap<u32, Arc<JoinResult>>,
    indexes: &mut FxHashMap<u32, EntryIndex>,
    deltas: &[RelationDelta],
    plan: Option<&JoinPlan>,
    par: Parallelism,
) -> Result<UpdateStats> {
    let m = query.num_relations();
    debug_assert!(m <= 31, "mask-keyed memos cap at 31 relations");
    // Bulk-rebuild escape hatch: the telescoping below pays one delta join
    // per cached mask per touched relation, so a batch that rewrites a
    // sizeable share of its relations costs ~relations_touched× a straight
    // rebuild however cheap each patch is.  Past the threshold, recompute
    // every affected mask through the plan chain instead of patching.
    let net_rows: usize = deltas.iter().map(RelationDelta::net_rows).sum();
    let touched_rows: usize = deltas
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| instance.relation(d.relation).distinct_count())
        .sum();
    if net_rows >= BULK_REBUILD_MIN_ROWS && net_rows * BULK_REBUILD_FACTOR >= touched_rows {
        return bulk_rebuild(query, instance, memo, indexes, deltas, plan, par);
    }
    let mut stats = UpdateStats::default();
    // Masks dropped to the rebuild fallback; recomputed after the batch.
    let mut rebuild: FxHashSet<u32> = FxHashSet::default();
    for delta in deltas {
        if delta.is_empty() {
            continue;
        }
        stats.relations_touched += 1;
        let i = delta.relation;
        let rel_attrs = instance.relation(i).attrs().to_vec();
        // The live relation moves to its new contents first; every mask
        // maintained below reads only relations ≠ i from the instance.
        delta.apply_to(instance.relation_mut(i));
        let bit = 1u32 << i;
        let mut masks: Vec<u32> = memo
            .keys()
            .copied()
            .filter(|mask| mask & bit != 0)
            .collect();
        masks.sort_unstable();
        for mask in masks {
            let parent_mask = mask & !bit;
            // J_{E∖{i}} in the current mixed state: relations ≤ i new,
            // relations > i old — warm from the memo when cached, joined
            // from the partially-updated instance otherwise (and memoised,
            // so later steps maintain it instead of recomputing).
            let parent: Option<Arc<JoinResult>> = if parent_mask == 0 {
                None
            } else if let Some(p) = memo.get(&parent_mask) {
                Some(Arc::clone(p))
            } else {
                let p = planned_subset(query, instance, memo, &rebuild, plan, parent_mask, par)?;
                // Memoise so later steps maintain it instead of recomputing
                // — unless the mask awaits a rebuild, in which case the
                // final pass provides the authoritative value.
                if !rebuild.contains(&parent_mask) {
                    memo.insert(parent_mask, Arc::clone(&p));
                }
                Some(p)
            };
            let mut target = memo.remove(&mask).expect("mask drawn from the memo");
            let mut tindex = indexes
                .remove(&mask)
                .filter(|ix| ix.ident == Arc::as_ptr(&target) as usize)
                .unwrap_or_else(|| EntryIndex::build(&target));
            if tindex.saturated {
                // Incremental arithmetic cannot mirror a rebuild through a
                // saturated weight; recompute from the final instance.
                rebuild.insert(mask);
                continue;
            }
            // The parent's key index, validated against its Arc identity
            // and (re)built on demand.
            let parent_index: Option<&mut EntryIndex> = match parent.as_ref() {
                None => None,
                Some(p) => {
                    let ix = indexes
                        .entry(parent_mask)
                        .or_insert_with(|| EntryIndex::build(p));
                    if ix.ident != Arc::as_ptr(p) as usize {
                        *ix = EntryIndex::build(p);
                    }
                    Some(ix)
                }
            };
            let ok = patch_mask(
                &mut target,
                &mut tindex,
                parent.as_deref(),
                parent_index,
                delta,
                &rel_attrs,
            );
            match ok {
                Some(()) => {
                    tindex.ident = Arc::as_ptr(&target) as usize;
                    memo.insert(mask, target);
                    indexes.insert(mask, tindex);
                    stats.maintained_masks += 1;
                }
                None => {
                    // Saturation guard tripped mid-patch: the entry (and
                    // its index) are no longer reliable — drop both so no
                    // later step consumes them, recompute at the end.
                    rebuild.insert(mask);
                }
            }
        }
    }
    let mut pending: Vec<u32> = rebuild.iter().copied().collect();
    pending.sort_unstable();
    stats.rebuilt_masks = pending.len();
    // Ascending mask order: a rebuilt subset re-enters the memo before any
    // larger pending mask walks its chain, so each rebuild reuses the ones
    // before it instead of starting over.
    for mask in pending {
        rebuild.remove(&mask);
        let fresh = planned_subset(query, instance, memo, &rebuild, plan, mask, par)?;
        indexes.remove(&mask);
        memo.insert(mask, fresh);
    }
    Ok(stats)
}

/// Minimum net changed tuples before the bulk-rebuild path is considered:
/// below this, per-mask patching is always at least competitive and the
/// streaming indexes stay warm.
const BULK_REBUILD_MIN_ROWS: usize = 64;

/// Bulk-rebuild density threshold: the escape hatch fires when the net
/// batch changes at least `1/BULK_REBUILD_FACTOR` of the touched
/// relations' distinct rows (and clears [`BULK_REBUILD_MIN_ROWS`]).
const BULK_REBUILD_FACTOR: usize = 8;

/// The bulk-rebuild path for batches that rewrite a sizeable share of
/// their relations: applies every net delta, drops all memo entries whose
/// mask intersects a touched relation, and recomputes them from the
/// updated instance in ascending mask order through the plan chain — so
/// each rebuilt subset (and every memoised chain prefix) is reused by the
/// larger masks after it, exactly like the saturation fallback.  Costs one
/// plan-routed lattice rebuild regardless of batch size, instead of one
/// delta join per cached mask per touched relation.
fn bulk_rebuild(
    query: &JoinQuery,
    instance: &mut Instance,
    memo: &mut FxHashMap<u32, Arc<JoinResult>>,
    indexes: &mut FxHashMap<u32, EntryIndex>,
    deltas: &[RelationDelta],
    plan: Option<&JoinPlan>,
    par: Parallelism,
) -> Result<UpdateStats> {
    let mut stats = UpdateStats::default();
    let mut touched = 0u32;
    for delta in deltas {
        if delta.is_empty() {
            continue;
        }
        stats.relations_touched += 1;
        touched |= 1u32 << delta.relation;
        delta.apply_to(instance.relation_mut(delta.relation));
    }
    let mut rebuild: FxHashSet<u32> = memo
        .keys()
        .copied()
        .filter(|mask| mask & touched != 0)
        .collect();
    let mut pending: Vec<u32> = rebuild.iter().copied().collect();
    pending.sort_unstable();
    stats.rebuilt_masks = pending.len();
    // Drop every stale entry (and its index) up front so the chain walks
    // below can only ever consume still-valid or freshly-rebuilt values.
    for mask in &pending {
        memo.remove(mask);
        indexes.remove(mask);
    }
    for mask in pending {
        rebuild.remove(&mask);
        let fresh = planned_subset(query, instance, memo, &rebuild, plan, mask, par)?;
        memo.insert(mask, fresh);
    }
    Ok(stats)
}

/// Builds the sub-join of `mask` over the instance's **current** contents by
/// walking `plan`'s decomposition chain down to the deepest usable base — a
/// memoised ancestor not awaiting rebuild, else a single relation — and
/// joining one pivot relation per step back up.  Intermediate chain masks
/// are memoised on the way (they hold correct current-state values, and
/// later maintenance steps patch them like any other entry); masks awaiting
/// rebuild never re-enter the memo here, so stale values cannot be
/// resurrected.  Falls back to the naive size-ordered fold when no
/// cost-based plan (matching the query's arity) is available.
fn planned_subset(
    query: &JoinQuery,
    instance: &Instance,
    memo: &mut FxHashMap<u32, Arc<JoinResult>>,
    rebuild: &FxHashSet<u32>,
    plan: Option<&JoinPlan>,
    mask: u32,
    par: Parallelism,
) -> Result<Arc<JoinResult>> {
    let usable = plan.filter(|p| p.is_cost_based() && p.num_relations() == query.num_relations());
    let Some(plan) = usable else {
        return Ok(Arc::new(join_subset_impl(
            query,
            instance,
            &mask_rels(mask),
            par,
        )?));
    };
    // Descend: peel the plan's pivot until a usable base is found.
    let mut pivots: Vec<usize> = Vec::new();
    let mut cur = mask;
    let mut base: Option<Arc<JoinResult>> = None;
    loop {
        if cur != mask && !rebuild.contains(&cur) {
            if let Some(hit) = memo.get(&cur) {
                base = Some(Arc::clone(hit));
                break;
            }
        }
        if cur.count_ones() == 1 {
            break;
        }
        let pivot = plan.pivot(cur);
        pivots.push(pivot);
        cur &= !(1u32 << pivot);
    }
    let mut acc = match base {
        Some(hit) => hit,
        None => Arc::new(JoinResult::from_relation(
            instance.relation(cur.trailing_zeros() as usize),
        )),
    };
    // Ascend: one hash-join step per peeled pivot.
    let mut built = cur;
    for &pivot in pivots.iter().rev() {
        let next = Arc::new(hash_join_step_with(&acc, instance.relation(pivot), par)?);
        built |= 1u32 << pivot;
        if built != mask && !rebuild.contains(&built) {
            memo.insert(built, Arc::clone(&next));
        }
        acc = next;
    }
    Ok(acc)
}

/// The relation indices of a subset bitmask, ascending.
fn mask_rels(mask: u32) -> Vec<usize> {
    (0..32).filter(|&r| mask & (1 << r) != 0).collect()
}

/// A per-key row adjacency over one entry: row indices grouped by the
/// projection onto a fixed attribute subset.
#[derive(Debug)]
struct KeyMap {
    /// Column positions of the key attributes within the entry's tuples.
    positions: Vec<usize>,
    /// Row indices per projected key.
    rows: FxHashMap<TupleKey, Vec<u32>>,
    /// `slot_of[row]` = position of `row` within its key's list, so a
    /// removal never scans the list — under heavy-hitter skew one hub key
    /// can hold thousands of rows, and a scan per retraction would make
    /// large delete batches quadratic.
    slot_of: Vec<u32>,
}

/// The streaming index of one memoised lattice entry, cached across batches
/// (in the context's LRU slot) so a steady update stream pays the build once
/// and every later batch costs `O(Δ × matches)` instead of `O(entry)`.
///
/// Positions refer to the physical rows of one specific [`JoinResult`]
/// allocation, identified by `ident` (the entry's `Arc` pointer); a
/// mismatch — the entry was replaced behind the index's back — just
/// triggers a rebuild of the index, never a wrong answer.
#[derive(Debug)]
pub(crate) struct EntryIndex {
    /// `Arc::as_ptr` of the indexed allocation.
    ident: usize,
    /// Whether any stored weight sits at `u128::MAX` (the saturation
    /// sentinel): such entries take the rebuild fallback, exactly as the
    /// full-scan guard of a copying patch would conclude.
    saturated: bool,
    /// Full tuple → physical row.
    by_tuple: FxHashMap<TupleKey, u32>,
    /// Lazily-built key adjacencies, one per attribute subset some delta
    /// relation joins this entry on.
    by_key: FxHashMap<Vec<AttrId>, KeyMap>,
}

impl EntryIndex {
    /// Indexes `entry` by full tuple (key adjacencies are built on demand).
    fn build(entry: &Arc<JoinResult>) -> Self {
        let mut by_tuple =
            FxHashMap::with_capacity_and_hasher(entry.distinct_count(), Default::default());
        let mut saturated = false;
        for (r, (tuple, w)) in entry.iter_unordered().enumerate() {
            saturated |= w == u128::MAX;
            by_tuple.insert(TupleKey::from_slice(tuple), r as u32);
        }
        EntryIndex {
            ident: Arc::as_ptr(entry) as usize,
            saturated,
            by_tuple,
            by_key: FxHashMap::default(),
        }
    }

    /// The key adjacency of `entry` over `key_attrs`, built on first use.
    fn key_map(&mut self, entry: &JoinResult, key_attrs: &[AttrId]) -> &KeyMap {
        self.by_key.entry(key_attrs.to_vec()).or_insert_with(|| {
            let positions: Vec<usize> = key_attrs
                .iter()
                .map(|a| {
                    entry
                        .attrs()
                        .binary_search(a)
                        .expect("key attrs come from the entry's attribute set")
                })
                .collect();
            let mut rows: FxHashMap<TupleKey, Vec<u32>> = FxHashMap::default();
            let mut slot_of = Vec::with_capacity(entry.distinct_count());
            let mut scratch = Vec::with_capacity(positions.len());
            for (r, (tuple, _)) in entry.iter_unordered().enumerate() {
                project_into(tuple, &positions, &mut scratch);
                let list = match rows.get_mut(scratch.as_slice()) {
                    Some(list) => list,
                    None => rows.entry(TupleKey::from_slice(&scratch)).or_default(),
                };
                list.push(r as u32);
                slot_of.push((list.len() - 1) as u32);
            }
            KeyMap {
                positions,
                rows,
                slot_of,
            }
        })
    }

    /// Records the append of row `r` (the new last row) holding `tuple`.
    fn on_append(&mut self, tuple: &[Value], r: u32) {
        self.by_tuple.insert(TupleKey::from_slice(tuple), r);
        let mut scratch = Vec::new();
        for km in self.by_key.values_mut() {
            project_into(tuple, &km.positions, &mut scratch);
            let list = match km.rows.get_mut(scratch.as_slice()) {
                Some(list) => list,
                None => km
                    .rows
                    .entry(TupleKey::from_slice(&scratch))
                    .or_insert_with(Vec::new),
            };
            list.push(r);
            km.slot_of.push((list.len() - 1) as u32);
        }
    }

    /// Records the swap-removal of row `r` from `entry` (still holding the
    /// pre-removal rows): `r` leaves every map and the last row's entries
    /// are repointed at `r`.
    fn on_swap_remove(&mut self, entry: &JoinResult, r: u32) {
        let last = (entry.distinct_count() - 1) as u32;
        self.by_tuple.remove(entry.row(r as usize));
        let mut scratch = Vec::new();
        for km in self.by_key.values_mut() {
            project_into(entry.row(r as usize), &km.positions, &mut scratch);
            let list = km
                .rows
                .get_mut(scratch.as_slice())
                .expect("indexed row must be present");
            let s = km.slot_of[r as usize] as usize;
            list.swap_remove(s);
            if let Some(&moved) = list.get(s) {
                km.slot_of[moved as usize] = s as u32;
            }
            if list.is_empty() {
                km.rows.remove(scratch.as_slice());
            }
            if r != last {
                // The entry's last row is about to move into position `r`.
                project_into(entry.row(last as usize), &km.positions, &mut scratch);
                let list = km
                    .rows
                    .get_mut(scratch.as_slice())
                    .expect("indexed row must be present");
                let sl = km.slot_of[last as usize] as usize;
                list[sl] = r;
                km.slot_of[r as usize] = sl as u32;
            }
            km.slot_of.pop();
        }
        if r != last {
            *self
                .by_tuple
                .get_mut(entry.row(last as usize))
                .expect("indexed row must be present") = r;
        }
    }
}

/// Patches one lattice entry in place for one relation's net delta:
/// `entry ← entry + Δ⁺ ⋈ parent − Δ⁻ ⋈ parent`, one delta row at a time
/// through the parent's key adjacency (`O(Δ × matches)`, never a scan of
/// the entry or the parent).
///
/// Surviving rows keep their physical position, retracted rows are
/// swap-removed, genuinely new rows are appended — the physical order
/// differs from a rebuild's probe order, but the weighted tuple *set* is
/// identical and every observable `JoinResult` surface sorts on emit.
///
/// Returns `None` when the entry must be recomputed instead: saturated
/// arithmetic was detected (a weight at `u128::MAX`, an addition that would
/// saturate, or a retraction exceeding the stored weight — possible only
/// downstream of saturation), or the cost guard found the delta-join output
/// as large as the entry itself, at which point a from-scratch sub-join is
/// the cheaper way to reach the identical result.
fn patch_mask(
    target: &mut Arc<JoinResult>,
    tindex: &mut EntryIndex,
    parent: Option<&JoinResult>,
    parent_index: Option<&mut EntryIndex>,
    delta: &RelationDelta,
    rel_attrs: &[AttrId],
) -> Option<()> {
    // Patching costs O(delta-join output) at a per-row constant roughly an
    // order of magnitude above the batched probe loops a rebuild runs, so
    // patching pays only while the delta join is well under the entry size;
    // the floor keeps tiny entries maintaining unconditionally.
    let patch_budget = (target.distinct_count() / 8).max(64);
    match (parent, parent_index) {
        (None, _) => {
            // Singleton mask: the delta rows ARE the delta join.
            if delta.added.len() + delta.removed.len() > patch_budget {
                return None;
            }
            let entry = Arc::make_mut(target);
            for (add, side) in [(true, &delta.added), (false, &delta.removed)] {
                for (tuple, &count) in side {
                    apply_row_delta(entry, tindex, tuple, count as u128, add)?;
                }
            }
        }
        (Some(parent), Some(parent_index)) => {
            let shared = intersect_attrs(rel_attrs, parent.attrs());
            let delta_key_pos: Vec<usize> = shared
                .iter()
                .map(|a| rel_attrs.binary_search(a).expect("shared attr"))
                .collect();
            let key_map = parent_index.key_map(parent, &shared);
            let mut scratch = Vec::with_capacity(delta_key_pos.len());
            let mut matches = 0usize;
            for side in [&delta.added, &delta.removed] {
                for tuple in side.keys() {
                    project_into(tuple, &delta_key_pos, &mut scratch);
                    matches += key_map.rows.get(scratch.as_slice()).map_or(0, Vec::len);
                }
                if matches > patch_budget {
                    return None;
                }
            }
            let entry = Arc::make_mut(target);
            // Entry columns come from the delta tuple where the relation
            // covers them, from the parent row otherwise (shared columns
            // agree by construction — the join matched on them).
            let entry_attrs = entry.attrs().to_vec();
            let merge: Vec<(bool, usize)> = entry_attrs
                .iter()
                .map(|a| match rel_attrs.binary_search(a) {
                    Ok(p) => (true, p),
                    Err(_) => (
                        false,
                        parent
                            .attrs()
                            .binary_search(a)
                            .expect("entry attrs are the union of operand attrs"),
                    ),
                })
                .collect();
            let mut key = Vec::with_capacity(delta_key_pos.len());
            let mut merged = Vec::with_capacity(merge.len());
            for (add, side) in [(true, &delta.added), (false, &delta.removed)] {
                for (tuple, &count) in side {
                    project_into(tuple, &delta_key_pos, &mut key);
                    let Some(rows) = key_map.rows.get(key.as_slice()) else {
                        continue; // the delta row joins with nothing
                    };
                    // Each (delta row, parent row) pair yields a distinct
                    // merged tuple, so every target row is touched at most
                    // once per side.
                    for &p in rows {
                        let w = (count as u128).checked_mul(parent.weight_at(p as usize))?;
                        merged.clear();
                        merged.extend(merge.iter().map(|&(from_delta, pos)| {
                            if from_delta {
                                tuple[pos]
                            } else {
                                parent.row(p as usize)[pos]
                            }
                        }));
                        apply_row_delta(entry, tindex, &merged, w, add)?;
                    }
                }
            }
        }
        (Some(_), None) => unreachable!("parent entries always come with an index"),
    }
    Some(())
}

/// Applies one signed row delta to an indexed entry in place.  `None` means
/// the saturation guard tripped and the entry must be rebuilt.
fn apply_row_delta(
    entry: &mut JoinResult,
    index: &mut EntryIndex,
    tuple: &[Value],
    w: u128,
    add: bool,
) -> Option<()> {
    if w == u128::MAX {
        return None;
    }
    match index.by_tuple.get(tuple).copied() {
        Some(r) => {
            let old = entry.weight_at(r as usize);
            if old == u128::MAX {
                return None;
            }
            let new = if add {
                old.checked_add(w)?
            } else {
                // A retraction exceeding the stored weight can only happen
                // downstream of saturation; bail to the rebuild fallback.
                old.checked_sub(w)?
            };
            if new == u128::MAX {
                return None;
            }
            if new == 0 {
                index.on_swap_remove(entry, r);
                entry.swap_remove_row(r as usize);
            } else {
                entry.set_weight(r as usize, new);
            }
        }
        None => {
            if !add {
                return None;
            }
            let r = entry.distinct_count() as u32;
            entry.push_row(tuple, w);
            index.on_append(tuple, r);
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::join::{join_subset, JoinResult};

    fn two_table() -> (JoinQuery, Instance) {
        let query = JoinQuery::two_table(8, 8, 8);
        let mut inst = Instance::empty_for(&query).unwrap();
        for (a, b, f) in [(1u64, 2u64, 2u64), (3, 2, 1), (4, 5, 3)] {
            inst.relation_mut(0).add(vec![a, b], f).unwrap();
        }
        for (b, c, f) in [(2u64, 1u64, 1u64), (2, 7, 4), (5, 0, 2)] {
            inst.relation_mut(1).add(vec![b, c], f).unwrap();
        }
        (query, inst)
    }

    /// Populates a memo with every non-empty mask of the instance.
    fn full_memo(query: &JoinQuery, inst: &Instance) -> FxHashMap<u32, Arc<JoinResult>> {
        let m = query.num_relations();
        let mut memo = FxHashMap::default();
        for mask in 1u32..(1 << m) {
            let rels = mask_rels(mask);
            memo.insert(mask, Arc::new(join_subset(query, inst, &rels).unwrap()));
        }
        memo
    }

    fn assert_memo_matches_rebuild(
        query: &JoinQuery,
        inst: &Instance,
        memo: &FxHashMap<u32, Arc<JoinResult>>,
    ) {
        for (&mask, entry) in memo {
            let fresh = join_subset(query, inst, &mask_rels(mask)).unwrap();
            assert_eq!(entry.as_ref(), &fresh, "mask {mask:#b} diverged");
        }
    }

    /// Test shorthand: net-delta a batch and maintain sequentially, the way
    /// `ExecContext::apply_updates` drives the production path.
    fn maintain(
        query: &JoinQuery,
        inst: &mut Instance,
        memo: &mut FxHashMap<u32, Arc<JoinResult>>,
        indexes: &mut FxHashMap<u32, EntryIndex>,
        batch: &UpdateBatch,
        plan: Option<&JoinPlan>,
    ) -> UpdateStats {
        let deltas = batch.net_deltas(query, inst).unwrap();
        maintain_memo(
            query,
            inst,
            memo,
            indexes,
            &deltas,
            plan,
            Parallelism::SEQUENTIAL,
        )
        .unwrap()
    }

    #[test]
    fn huge_batches_take_the_bulk_rebuild_path() {
        use crate::plan::JoinPlan;
        // A 3-star large enough to cache, with a batch that rewrites well
        // over 1/BULK_REBUILD_FACTOR of every relation: maintenance must
        // skip patching and recompute every affected mask through the
        // plan chain (maintained_masks == 0, all masks rebuilt).
        let query = JoinQuery::star(3, 64).unwrap();
        let mut base = Instance::empty_for(&query).unwrap();
        for h in 0..16u64 {
            for p in 0..8u64 {
                base.relation_mut(0).add(vec![h, p], 1).unwrap();
                base.relation_mut(1).add(vec![h, (p * 3) % 8], 1).unwrap();
            }
            base.relation_mut(2).add(vec![h, h % 4], 1).unwrap();
        }
        let plan = JoinPlan::cost_based(&query, &base).unwrap();
        let mut batch = UpdateBatch::new();
        for h in 0..16u64 {
            for p in 8..10u64 {
                batch.insert(0, vec![h, p], 1);
                batch.insert(1, vec![h, p], 2);
            }
            batch.delete(2, vec![h, h % 4], 1);
            batch.insert(2, vec![h, 63], 1);
        }
        // 96 net rows over 272 stored rows: past both thresholds.
        let mut inst = base.clone();
        let mut memo = full_memo(&query, &inst);
        let mut indexes = FxHashMap::default();
        let stats = maintain(
            &query,
            &mut inst,
            &mut memo,
            &mut indexes,
            &batch,
            Some(&plan),
        );
        assert_eq!(stats.maintained_masks, 0, "patching must be skipped");
        assert_eq!(stats.relations_touched, 3);
        assert_eq!(stats.rebuilt_masks, 7, "every cached mask is affected");
        assert!(
            indexes.is_empty(),
            "stale streaming indexes must be dropped"
        );
        let mut oracle = base.clone();
        apply_batch(&query, &mut oracle, &batch).unwrap();
        assert_eq!(inst, oracle);
        assert_memo_matches_rebuild(&query, &inst, &memo);
        // The inverse batch is just as large; the round trip restores the
        // starting instance and state byte for byte.
        let stats = maintain(
            &query,
            &mut inst,
            &mut memo,
            &mut indexes,
            &batch.inverse(),
            Some(&plan),
        );
        assert_eq!(stats.maintained_masks, 0);
        assert_eq!(inst, base);
        assert_memo_matches_rebuild(&query, &inst, &memo);
    }

    #[test]
    fn net_semantics_cancel_within_a_batch() {
        let (query, inst) = two_table();
        let mut batch = UpdateBatch::new();
        batch.insert(0, vec![6, 6], 2);
        batch.delete(0, vec![6, 6], 2);
        let deltas = batch.net_deltas(&query, &inst).unwrap();
        assert!(deltas.iter().all(RelationDelta::is_empty));
        // A delete covered by an insert in the same batch is valid even
        // though the tuple is absent from the instance.
        let mut covered = UpdateBatch::new();
        covered.insert(1, vec![7, 7], 3);
        covered.delete(1, vec![7, 7], 1);
        assert!(covered.check(&query, &inst).is_ok());
    }

    #[test]
    fn check_rejects_malformed_batches() {
        let (query, inst) = two_table();
        let mut bad_rel = UpdateBatch::new();
        bad_rel.insert(7, vec![0, 0], 1);
        assert!(matches!(
            bad_rel.check(&query, &inst),
            Err(RelationalError::InvalidUpdate(_))
        ));
        let mut bad_arity = UpdateBatch::new();
        bad_arity.insert(0, vec![0], 1);
        assert!(matches!(
            bad_arity.check(&query, &inst),
            Err(RelationalError::ArityMismatch { .. })
        ));
        let mut bad_domain = UpdateBatch::new();
        bad_domain.insert(0, vec![99, 0], 1);
        assert!(matches!(
            bad_domain.check(&query, &inst),
            Err(RelationalError::ValueOutOfDomain { .. })
        ));
        let mut underflow = UpdateBatch::new();
        underflow.delete(0, vec![1, 2], 3);
        assert!(matches!(
            underflow.check(&query, &inst),
            Err(RelationalError::FrequencyUnderflow)
        ));
        let mut overflow = UpdateBatch::new();
        overflow.insert(0, vec![1, 2], u64::MAX);
        assert!(matches!(
            overflow.check(&query, &inst),
            Err(RelationalError::FrequencyOverflow)
        ));
    }

    #[test]
    fn apply_batch_matches_manual_mutation() {
        let (query, mut inst) = two_table();
        let mut expect = inst.clone();
        let mut batch = UpdateBatch::new();
        batch.insert(0, vec![6, 5], 2);
        batch.delete(1, vec![2, 7], 1);
        apply_batch(&query, &mut inst, &batch).unwrap();
        expect.relation_mut(0).add(vec![6, 5], 2).unwrap();
        expect.relation_mut(1).remove_one(&[2, 7]).unwrap();
        assert_eq!(inst, expect);
        // Inverse restores the original.
        apply_batch(&query, &mut inst, &batch.inverse()).unwrap();
        let (_, original) = two_table();
        assert_eq!(inst, original);
    }

    #[test]
    fn maintenance_equals_rebuild_on_mixed_batches() {
        let (query, base) = two_table();
        let mut batch = UpdateBatch::new();
        batch.insert(0, vec![6, 5], 2); // joins with (5, 0)
        batch.insert(1, vec![2, 3], 1); // joins with the b=2 tuples
        batch.delete(0, vec![1, 2], 2); // removes a tuple entirely
        batch.delete(1, vec![2, 7], 1); // retracts weight, tuple survives
        batch.insert(0, vec![0, 0], 1); // dangling: joins with nothing

        let mut inst = base.clone();
        let mut memo = full_memo(&query, &inst);
        let stats = maintain(
            &query,
            &mut inst,
            &mut memo,
            &mut FxHashMap::default(),
            &batch,
            None,
        );
        assert_eq!(stats.rebuilt_masks, 0);
        assert_eq!(stats.relations_touched, 2);
        // The instance moved to the updated contents…
        let mut oracle = base.clone();
        apply_batch(&query, &mut oracle, &batch).unwrap();
        assert_eq!(inst, oracle);
        // …and every maintained mask equals a from-scratch rebuild.
        assert_memo_matches_rebuild(&query, &inst, &memo);
    }

    #[test]
    fn maintenance_handles_partially_populated_memos() {
        let (query, base) = two_table();
        let mut batch = UpdateBatch::new();
        batch.insert(0, vec![6, 5], 1);
        batch.delete(1, vec![5, 0], 1);
        // Only the full mask is cached; parents are joined from the
        // mixed-state instance on demand.
        let mut inst = base.clone();
        let mut memo = FxHashMap::default();
        memo.insert(0b11, Arc::new(join_subset(&query, &inst, &[0, 1]).unwrap()));
        maintain(
            &query,
            &mut inst,
            &mut memo,
            &mut FxHashMap::default(),
            &batch,
            None,
        );
        assert_memo_matches_rebuild(&query, &inst, &memo);
        // The on-demand parent was memoised and maintained too.
        assert!(memo.contains_key(&0b10));
    }

    #[test]
    fn plan_routed_maintenance_equals_rebuild() {
        use crate::plan::JoinPlan;
        // A 3-star with skewed relation sizes so the cost-based chain
        // differs from the fixed highest-index prefix: peeling R0 (the big
        // relation) first leaves the smallest intermediates.
        let query = JoinQuery::star(3, 8).unwrap();
        let mut base = Instance::empty_for(&query).unwrap();
        for h in 0..4u64 {
            for p in 0..8u64 {
                base.relation_mut(0).add(vec![h, p], 1).unwrap();
            }
            for p in 0..4u64 {
                base.relation_mut(1).add(vec![h, p], 1).unwrap();
            }
            base.relation_mut(2).add(vec![h, 0], 1).unwrap();
        }
        let plan = JoinPlan::cost_based(&query, &base).unwrap();
        assert!(plan.is_cost_based());
        let mut batch = UpdateBatch::new();
        batch.insert(1, vec![5, 5], 2);
        batch.delete(2, vec![3, 0], 1);
        batch.insert(2, vec![7, 7], 1);
        // Only the full mask is cached: the on-demand parent fallback must
        // route through the plan's chain, not the fixed prefix.
        let mut inst = base.clone();
        let mut memo = FxHashMap::default();
        let full = 0b111u32;
        memo.insert(
            full,
            Arc::new(join_subset(&query, &inst, &[0, 1, 2]).unwrap()),
        );
        maintain(
            &query,
            &mut inst,
            &mut memo,
            &mut FxHashMap::default(),
            &batch,
            Some(&plan),
        );
        let mut oracle = base.clone();
        apply_batch(&query, &mut oracle, &batch).unwrap();
        assert_eq!(inst, oracle);
        assert_memo_matches_rebuild(&query, &inst, &memo);
        // The on-demand delta-join parents (full minus each touched
        // relation) were computed through the plan chain and memoised —
        // and maintained through the batch like any other entry
        // (assert_memo_matches_rebuild above covered their values).
        for parent in [0b101u32, 0b011] {
            assert!(
                memo.contains_key(&parent),
                "the delta-join parent {parent:#b} must be memoised"
            );
        }

        // Saturation rebuilds route through the plan too: poison the full
        // entry and let the guard recompute it along the plan chain.
        let saturated: BTreeMap<Vec<Value>, u128> = memo[&full]
            .iter()
            .map(|(t, _)| (t.to_vec(), u128::MAX))
            .collect();
        let attrs = memo[&full].attrs().to_vec();
        memo.insert(full, Arc::new(JoinResult::from_parts(attrs, saturated)));
        let mut second = UpdateBatch::new();
        second.insert(1, vec![6, 6], 1);
        let stats = maintain(
            &query,
            &mut inst,
            &mut memo,
            &mut FxHashMap::default(),
            &second,
            Some(&plan),
        );
        assert!(stats.rebuilt_masks >= 1, "saturation guard must trip");
        assert_memo_matches_rebuild(&query, &inst, &memo);
    }

    #[test]
    fn saturated_entries_fall_back_to_rebuild() {
        // Distinct relation attrs (a star) so a saturated weight can arise:
        // two u64::MAX frequencies multiply past u128 saturation range.
        let query = JoinQuery::star(2, 4).unwrap();
        let mut inst = Instance::empty_for(&query).unwrap();
        inst.relation_mut(0).add(vec![0, 0], u64::MAX).unwrap();
        inst.relation_mut(1).add(vec![0, 0], u64::MAX).unwrap();
        inst.relation_mut(0).add(vec![1, 1], 1).unwrap();
        inst.relation_mut(1).add(vec![1, 1], 1).unwrap();
        let mut memo = full_memo(&query, &inst);
        // Force an artificially saturated full-join entry: the guard must
        // refuse to patch it and recompute instead of serving bad bytes.
        let full = memo.get(&0b11).unwrap();
        let saturated: BTreeMap<Vec<Value>, u128> =
            full.iter().map(|(t, _)| (t.to_vec(), u128::MAX)).collect();
        memo.insert(
            0b11,
            Arc::new(JoinResult::from_parts(full.attrs().to_vec(), saturated)),
        );
        let mut batch = UpdateBatch::new();
        batch.insert(0, vec![1, 2], 1);
        let stats = maintain(
            &query,
            &mut inst,
            &mut memo,
            &mut FxHashMap::default(),
            &batch,
            None,
        );
        assert!(stats.rebuilt_masks >= 1, "saturation guard must trip");
        assert_memo_matches_rebuild(&query, &inst, &memo);
    }

    #[test]
    fn forward_then_inverse_restores_every_entry() {
        let (query, base) = two_table();
        let mut batch = UpdateBatch::new();
        batch.insert(0, vec![6, 5], 2);
        batch.delete(0, vec![4, 5], 1);
        batch.insert(1, vec![5, 3], 4);
        let mut inst = base.clone();
        let mut memo = full_memo(&query, &inst);
        let mut indexes = FxHashMap::default();
        maintain(&query, &mut inst, &mut memo, &mut indexes, &batch, None);
        maintain(
            &query,
            &mut inst,
            &mut memo,
            &mut indexes,
            &batch.inverse(),
            None,
        );
        assert_eq!(inst, base);
        assert_memo_matches_rebuild(&query, &inst, &memo);
        for (&mask, entry) in &full_memo(&query, &base) {
            assert_eq!(memo.get(&mask).unwrap().as_ref(), entry.as_ref());
        }
    }

    #[test]
    fn in_place_patch_drops_zero_rows_and_guards_saturation() {
        let attrs = vec![AttrId(0), AttrId(1)];
        let mut entry = Arc::new(JoinResult::from_parts(
            attrs.clone(),
            [(vec![1u64, 1], 3u128), (vec![2, 2], 1)]
                .into_iter()
                .collect(),
        ));
        let mut ix = EntryIndex::build(&entry);
        let e = Arc::make_mut(&mut entry);
        // Retraction to zero swap-removes the row; appends land at the end.
        apply_row_delta(e, &mut ix, &[2, 2], 1, false).unwrap();
        apply_row_delta(e, &mut ix, &[0, 9], 5, true).unwrap();
        let rows: Vec<(Vec<Value>, u128)> = entry.iter().map(|(t, w)| (t.to_vec(), w)).collect();
        assert_eq!(rows, vec![(vec![0, 9], 5), (vec![1, 1], 3)]);
        // The index tracked both mutations.
        assert_eq!(ix.by_tuple, EntryIndex::build(&entry).by_tuple);
        // Guards: retracting an absent row, over-retracting a present one,
        // and pushing a weight to the saturation sentinel all bail out.
        let e = Arc::make_mut(&mut entry);
        assert!(apply_row_delta(e, &mut ix, &[7, 7], 1, false).is_none());
        assert!(apply_row_delta(e, &mut ix, &[1, 1], 9, false).is_none());
        assert!(apply_row_delta(e, &mut ix, &[1, 1], u128::MAX - 3, true).is_none());
    }
}
