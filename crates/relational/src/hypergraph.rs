//! Join queries as hypergraphs `H = (x, {x_1, …, x_m})`.
//!
//! The hypergraph view of a natural join query (Section 1.1) drives every
//! structural computation in the paper: boundaries `∂E` of relation subsets
//! (Section 3.3), connectivity of residual joins (Section 4.2.1), the
//! hierarchical-query test (Section 4.2), and the fractional edge cover used
//! for the worst-case bound (Appendix B.3).

use crate::attr::{AttrId, Schema};
use crate::error::RelationalError;
use crate::tuple::{diff_attrs, intersect_attrs, union_attrs};
use crate::Result;

/// A natural join query over a schema: one hyperedge (attribute list) per
/// relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinQuery {
    schema: Schema,
    rel_attrs: Vec<Vec<AttrId>>,
}

impl JoinQuery {
    /// Builds a join query.  Each relation's attribute list must be non-empty,
    /// sorted, duplicate-free and refer only to schema attributes.
    pub fn new(schema: Schema, rel_attrs: Vec<Vec<AttrId>>) -> Result<Self> {
        if rel_attrs.is_empty() {
            return Err(RelationalError::EmptyQuery);
        }
        for attrs in &rel_attrs {
            schema.check_attr_list(attrs)?;
        }
        Ok(JoinQuery { schema, rel_attrs })
    }

    /// Convenience constructor for the canonical two-table query of Section 3.1:
    /// `x = {A, B, C}`, `x_1 = {A, B}`, `x_2 = {B, C}`.
    pub fn two_table(dom_a: u64, dom_b: u64, dom_c: u64) -> Self {
        let schema = Schema::new(vec![
            crate::attr::Attribute::new("A", dom_a),
            crate::attr::Attribute::new("B", dom_b),
            crate::attr::Attribute::new("C", dom_c),
        ]);
        JoinQuery::new(
            schema,
            vec![vec![AttrId(0), AttrId(1)], vec![AttrId(1), AttrId(2)]],
        )
        .expect("two-table query is always valid")
    }

    /// Path join `R_1(A_0, A_1) ⋈ R_2(A_1, A_2) ⋈ … ⋈ R_m(A_{m-1}, A_m)` with a
    /// uniform per-attribute domain size.
    pub fn path(m: usize, domain_size: u64) -> Result<Self> {
        if m == 0 {
            return Err(RelationalError::EmptyQuery);
        }
        let names: Vec<String> = (0..=m).map(|i| format!("A{i}")).collect();
        let attrs = names
            .iter()
            .map(|n| crate::attr::Attribute::new(n.clone(), domain_size))
            .collect();
        let schema = Schema::new(attrs);
        let rels = (0..m)
            .map(|i| vec![AttrId(i as u16), AttrId(i as u16 + 1)])
            .collect();
        JoinQuery::new(schema, rels)
    }

    /// Star join `R_1(B, A_1) ⋈ R_2(B, A_2) ⋈ … ⋈ R_m(B, A_m)`: every relation
    /// shares the hub attribute `B` (attribute 0).
    pub fn star(m: usize, domain_size: u64) -> Result<Self> {
        if m == 0 {
            return Err(RelationalError::EmptyQuery);
        }
        let mut attrs = vec![crate::attr::Attribute::new("B", domain_size)];
        for i in 1..=m {
            attrs.push(crate::attr::Attribute::new(format!("A{i}"), domain_size));
        }
        let schema = Schema::new(attrs);
        let rels = (1..=m).map(|i| vec![AttrId(0), AttrId(i as u16)]).collect();
        JoinQuery::new(schema, rels)
    }

    /// Triangle join `R_1(A,B) ⋈ R_2(B,C) ⋈ R_3(A,C)` — the classic
    /// non-hierarchical cyclic query.
    pub fn triangle(domain_size: u64) -> Self {
        let schema = Schema::uniform(&["A", "B", "C"], domain_size);
        JoinQuery::new(
            schema,
            vec![
                vec![AttrId(0), AttrId(1)],
                vec![AttrId(1), AttrId(2)],
                vec![AttrId(0), AttrId(2)],
            ],
        )
        .expect("triangle query is always valid")
    }

    /// The schema (global attribute set `x`).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of relations `m`.
    pub fn num_relations(&self) -> usize {
        self.rel_attrs.len()
    }

    /// Attribute list of relation `i` (the hyperedge `x_i`).
    pub fn relation_attrs(&self, i: usize) -> &[AttrId] {
        &self.rel_attrs[i]
    }

    /// All relation attribute lists.
    pub fn relations(&self) -> &[Vec<AttrId>] {
        &self.rel_attrs
    }

    /// All attributes of the query (sorted).
    pub fn all_attrs(&self) -> Vec<AttrId> {
        self.schema.all_ids()
    }

    /// `atom(x)`: the set of relation indices whose hyperedge contains `x`.
    pub fn atom(&self, x: AttrId) -> Vec<usize> {
        self.rel_attrs
            .iter()
            .enumerate()
            .filter(|(_, attrs)| attrs.binary_search(&x).is_ok())
            .map(|(i, _)| i)
            .collect()
    }

    /// Union of attribute lists of the relation subset `e`.
    pub fn union_attrs(&self, e: &[usize]) -> Result<Vec<AttrId>> {
        self.check_subset(e)?;
        let mut out: Vec<AttrId> = Vec::new();
        for &i in e {
            out = union_attrs(&out, &self.rel_attrs[i]);
        }
        Ok(out)
    }

    /// Intersection of attribute lists of the relation subset `e`
    /// (`⋂_{i∈E} x_i`).  Returns the empty list for an empty subset.
    pub fn intersect_attrs(&self, e: &[usize]) -> Result<Vec<AttrId>> {
        self.check_subset(e)?;
        let mut iter = e.iter();
        let first = match iter.next() {
            Some(&i) => self.rel_attrs[i].clone(),
            None => return Ok(Vec::new()),
        };
        Ok(iter.fold(first, |acc, &i| intersect_attrs(&acc, &self.rel_attrs[i])))
    }

    /// Boundary `∂E`: attributes shared between a relation inside `e` and a
    /// relation outside `e`.  For `e = [m]` (or `e = ∅`) the boundary is empty.
    pub fn boundary(&self, e: &[usize]) -> Result<Vec<AttrId>> {
        self.check_subset(e)?;
        let inside = self.union_attrs(e)?;
        let outside: Vec<usize> = (0..self.num_relations())
            .filter(|i| !e.contains(i))
            .collect();
        let outside_attrs = self.union_attrs_allow_empty(&outside);
        Ok(intersect_attrs(&inside, &outside_attrs))
    }

    fn union_attrs_allow_empty(&self, e: &[usize]) -> Vec<AttrId> {
        let mut out: Vec<AttrId> = Vec::new();
        for &i in e {
            out = union_attrs(&out, &self.rel_attrs[i]);
        }
        out
    }

    /// Connected components of the residual join `H_{E,y}`: the relation
    /// subset `e` where the attributes `removed` have been deleted from every
    /// hyperedge.  Two relations are adjacent when they still share an
    /// attribute outside `removed`.
    pub fn connected_components(&self, e: &[usize], removed: &[AttrId]) -> Result<Vec<Vec<usize>>> {
        self.check_subset(e)?;
        let residual: Vec<Vec<AttrId>> = e
            .iter()
            .map(|&i| diff_attrs(&self.rel_attrs[i], removed))
            .collect();
        let n = e.len();
        let mut component = vec![usize::MAX; n];
        let mut next = 0usize;
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let id = next;
            next += 1;
            let mut stack = vec![start];
            component[start] = id;
            while let Some(u) = stack.pop() {
                for v in 0..n {
                    if component[v] == usize::MAX
                        && !intersect_attrs(&residual[u], &residual[v]).is_empty()
                    {
                        component[v] = id;
                        stack.push(v);
                    }
                }
            }
        }
        let mut comps: Vec<Vec<usize>> = vec![Vec::new(); next];
        for (local, &c) in component.iter().enumerate() {
            comps[c].push(e[local]);
        }
        Ok(comps)
    }

    /// Whether the residual join `H_{E,y}` is connected.
    pub fn is_connected(&self, e: &[usize], removed: &[AttrId]) -> Result<bool> {
        Ok(self.connected_components(e, removed)?.len() <= 1)
    }

    /// The hierarchical-query test of Section 4.2: for every pair of
    /// attributes `x, y`, `atom(x)` and `atom(y)` must be nested or disjoint.
    pub fn is_hierarchical(&self) -> bool {
        let attrs = self.all_attrs();
        for (i, &x) in attrs.iter().enumerate() {
            let ax = self.atom(x);
            for &y in &attrs[i + 1..] {
                let ay = self.atom(y);
                let inter: Vec<usize> = ax.iter().filter(|v| ay.contains(v)).copied().collect();
                let nested_or_disjoint =
                    inter.is_empty() || inter.len() == ax.len() || inter.len() == ay.len();
                if !nested_or_disjoint {
                    return false;
                }
            }
        }
        true
    }

    /// Validates a relation-index subset (indices in range and strictly increasing).
    pub fn check_subset(&self, e: &[usize]) -> Result<()> {
        for w in e.windows(2) {
            if w[0] >= w[1] {
                return Err(RelationalError::InvalidRelationSubset(format!(
                    "relation subset must be strictly increasing, found {} then {}",
                    w[0], w[1]
                )));
            }
        }
        for &i in e {
            if i >= self.num_relations() {
                return Err(RelationalError::InvalidRelationSubset(format!(
                    "relation index {i} out of range (m = {})",
                    self.num_relations()
                )));
            }
        }
        Ok(())
    }

    /// All subsets of `[m] \ excluded`, as sorted index vectors (including the
    /// empty subset).  Used by the residual-sensitivity computation; `m` is a
    /// constant in the paper's data-complexity setting.
    pub fn subsets_excluding(&self, excluded: usize) -> Vec<Vec<usize>> {
        let others: Vec<usize> = (0..self.num_relations())
            .filter(|&i| i != excluded)
            .collect();
        let mut out = Vec::with_capacity(1 << others.len());
        for mask in 0u32..(1u32 << others.len()) {
            let subset: Vec<usize> = others
                .iter()
                .enumerate()
                .filter(|(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &idx)| idx)
                .collect();
            out.push(subset);
        }
        out
    }

    /// Complement `[m] \ e` of a relation subset.
    pub fn complement(&self, e: &[usize]) -> Vec<usize> {
        (0..self.num_relations())
            .filter(|i| !e.contains(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    #[test]
    fn two_table_shape() {
        let q = JoinQuery::two_table(4, 4, 4);
        assert_eq!(q.num_relations(), 2);
        assert_eq!(q.relation_attrs(0), ids(&[0, 1]).as_slice());
        assert_eq!(q.relation_attrs(1), ids(&[1, 2]).as_slice());
        assert_eq!(q.atom(AttrId(1)), vec![0, 1]);
        assert_eq!(q.atom(AttrId(0)), vec![0]);
    }

    #[test]
    fn boundary_of_subsets() {
        let q = JoinQuery::path(3, 4).unwrap(); // R1(A0,A1) R2(A1,A2) R3(A2,A3)
        assert_eq!(q.boundary(&[0]).unwrap(), ids(&[1]));
        assert_eq!(q.boundary(&[1]).unwrap(), ids(&[1, 2]));
        assert_eq!(q.boundary(&[0, 1]).unwrap(), ids(&[2]));
        assert_eq!(q.boundary(&[0, 1, 2]).unwrap(), Vec::<AttrId>::new());
        assert_eq!(q.boundary(&[]).unwrap(), Vec::<AttrId>::new());
    }

    #[test]
    fn union_and_intersection() {
        let q = JoinQuery::path(3, 4).unwrap();
        assert_eq!(q.union_attrs(&[0, 2]).unwrap(), ids(&[0, 1, 2, 3]));
        assert_eq!(q.intersect_attrs(&[0, 1]).unwrap(), ids(&[1]));
        assert_eq!(q.intersect_attrs(&[0, 2]).unwrap(), Vec::<AttrId>::new());
        assert_eq!(q.intersect_attrs(&[]).unwrap(), Vec::<AttrId>::new());
    }

    #[test]
    fn connectivity_of_residual_joins() {
        let q = JoinQuery::path(3, 4).unwrap();
        // Removing A1 disconnects {R1} from {R2}.
        assert!(!q.is_connected(&[0, 1], &ids(&[1])).unwrap());
        assert!(q.is_connected(&[0, 1], &[]).unwrap());
        // The full path is connected; removing the middle attribute A2 splits
        // {R1, R2} from {R3}.
        let comps = q.connected_components(&[0, 1, 2], &ids(&[2])).unwrap();
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2]));
    }

    #[test]
    fn hierarchical_detection() {
        // Two-table join: atom(A)={0}, atom(B)={0,1}, atom(C)={1} — hierarchical.
        assert!(JoinQuery::two_table(4, 4, 4).is_hierarchical());
        // Star join is hierarchical.
        assert!(JoinQuery::star(3, 4).unwrap().is_hierarchical());
        // Path of length 3 is NOT hierarchical: atom(A1)={0,1}, atom(A2)={1,2}
        // overlap without nesting.
        assert!(!JoinQuery::path(3, 4).unwrap().is_hierarchical());
        // Triangle is not hierarchical either.
        assert!(!JoinQuery::triangle(4).is_hierarchical());
        // The Figure 4 query is hierarchical.
        let schema = Schema::uniform(&["A", "B", "C", "D", "F", "G", "K", "L"], 4);
        let q = JoinQuery::new(
            schema,
            vec![
                ids(&[0, 1, 3]),    // {A,B,D}
                ids(&[0, 1, 4]),    // {A,B,F}
                ids(&[0, 1, 5, 6]), // {A,B,G,K}
                ids(&[0, 1, 5, 7]), // {A,B,G,L}
                ids(&[0, 2]),       // {A,C}
            ],
        )
        .unwrap();
        assert!(q.is_hierarchical());
    }

    #[test]
    fn subsets_excluding_enumerates_powerset() {
        let q = JoinQuery::path(3, 4).unwrap();
        let subsets = q.subsets_excluding(1);
        assert_eq!(subsets.len(), 4); // subsets of {0, 2}
        assert!(subsets.contains(&vec![]));
        assert!(subsets.contains(&vec![0, 2]));
        assert_eq!(q.complement(&[0, 2]), vec![1]);
    }

    #[test]
    fn invalid_construction_rejected() {
        let schema = Schema::uniform(&["A", "B"], 4);
        assert!(JoinQuery::new(schema.clone(), vec![]).is_err());
        assert!(JoinQuery::new(schema.clone(), vec![ids(&[0, 5])]).is_err());
        let q = JoinQuery::new(schema, vec![ids(&[0, 1])]).unwrap();
        assert!(q.check_subset(&[0]).is_ok());
        assert!(q.check_subset(&[1]).is_err());
        assert!(q.check_subset(&[0, 0]).is_err());
    }
}
