//! Frequency-annotated relations `R_i : D_i → Z≥0`.
//!
//! Following Section 1.1 of the paper, a relation is a function from its tuple
//! domain to non-negative integers (tuple frequencies / annotations).  This is
//! strictly more general than a set-valued relation and is the object over
//! which neighbouring instances (Definition 1.1) are defined: two relations
//! are neighbours if exactly one tuple's frequency changes by exactly one.

use std::collections::{BTreeMap, BTreeSet};

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::hash::FxHashMap;
use crate::tuple::{project_into, project_positions, project_with_positions, TupleKey, Value};
use crate::Result;

/// A frequency-annotated relation over a sorted list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    attrs: Vec<AttrId>,
    freqs: BTreeMap<Vec<Value>, u64>,
}

impl Relation {
    /// Creates an empty relation over the given attribute list.
    ///
    /// The list must be non-empty, sorted and duplicate-free.
    pub fn new(attrs: Vec<AttrId>) -> Result<Self> {
        if attrs.is_empty() {
            return Err(RelationalError::InvalidAttributeList(
                "relation must have at least one attribute".to_string(),
            ));
        }
        for w in attrs.windows(2) {
            if w[0] >= w[1] {
                return Err(RelationalError::InvalidAttributeList(format!(
                    "relation attributes must be strictly increasing, found {} then {}",
                    w[0], w[1]
                )));
            }
        }
        Ok(Relation {
            attrs,
            freqs: BTreeMap::new(),
        })
    }

    /// Creates a relation and inserts the given `(tuple, frequency)` pairs.
    pub fn from_tuples(
        attrs: Vec<AttrId>,
        tuples: impl IntoIterator<Item = (Vec<Value>, u64)>,
    ) -> Result<Self> {
        let mut rel = Relation::new(attrs)?;
        for (t, f) in tuples {
            rel.add(t, f)?;
        }
        Ok(rel)
    }

    /// The relation's attribute list `x_i` (sorted).
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Adds `freq` to the frequency of `tuple`.
    pub fn add(&mut self, tuple: Vec<Value>, freq: u64) -> Result<()> {
        if tuple.len() != self.attrs.len() {
            return Err(RelationalError::ArityMismatch {
                expected: self.attrs.len(),
                got: tuple.len(),
            });
        }
        if freq == 0 {
            return Ok(());
        }
        *self.freqs.entry(tuple).or_insert(0) += freq;
        Ok(())
    }

    /// Adds a single copy of `tuple` (frequency `+1`).
    pub fn add_one(&mut self, tuple: Vec<Value>) -> Result<()> {
        self.add(tuple, 1)
    }

    /// Removes a single copy of `tuple` (frequency `-1`).
    ///
    /// Fails with [`RelationalError::FrequencyUnderflow`] if the tuple has
    /// frequency zero.
    pub fn remove_one(&mut self, tuple: &[Value]) -> Result<()> {
        if tuple.len() != self.attrs.len() {
            return Err(RelationalError::ArityMismatch {
                expected: self.attrs.len(),
                got: tuple.len(),
            });
        }
        match self.freqs.get_mut(tuple) {
            Some(f) if *f > 1 => {
                *f -= 1;
                Ok(())
            }
            Some(_) => {
                self.freqs.remove(tuple);
                Ok(())
            }
            None => Err(RelationalError::FrequencyUnderflow),
        }
    }

    /// Sets the frequency of `tuple` to exactly `freq` (removing it if zero).
    pub fn set(&mut self, tuple: Vec<Value>, freq: u64) -> Result<()> {
        if tuple.len() != self.attrs.len() {
            return Err(RelationalError::ArityMismatch {
                expected: self.attrs.len(),
                got: tuple.len(),
            });
        }
        if freq == 0 {
            self.freqs.remove(&tuple);
        } else {
            self.freqs.insert(tuple, freq);
        }
        Ok(())
    }

    /// Frequency of a tuple (zero if absent).
    pub fn freq(&self, tuple: &[Value]) -> u64 {
        self.freqs.get(tuple).copied().unwrap_or(0)
    }

    /// Total frequency mass `Σ_t R(t)` — the relation's contribution to the
    /// input size `n`.
    pub fn total(&self) -> u64 {
        self.freqs.values().sum()
    }

    /// Number of distinct tuples with non-zero frequency.
    pub fn distinct_count(&self) -> usize {
        self.freqs.len()
    }

    /// Returns `true` when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Iterates over `(tuple, frequency)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, u64)> {
        self.freqs.iter().map(|(t, &f)| (t, f))
    }

    /// The degree map onto attribute subset `y ⊆ x_i`:
    /// `deg_{i,y}(t) = Σ_{t' : π_y t' = t} R_i(t')`.
    ///
    /// For `y = ∅` the map has a single entry keyed by the empty tuple whose
    /// value is [`Relation::total`].
    pub fn degree_map(&self, onto: &[AttrId]) -> Result<BTreeMap<Vec<Value>, u64>> {
        // Accumulate in a hash map (O(1) probes), emit sorted.
        Ok(self
            .degree_map_key(onto)?
            .into_iter()
            .map(|(k, f)| (k.to_vec(), f))
            .collect())
    }

    /// The degree map as a hash map keyed by the projected [`TupleKey`] — the
    /// order-free fast path behind [`Relation::degree_map`] and
    /// [`Relation::max_degree`].
    pub fn degree_map_key(&self, onto: &[AttrId]) -> Result<FxHashMap<TupleKey, u64>> {
        let positions = project_positions(&self.attrs, onto)?;
        let mut out: FxHashMap<TupleKey, u64> = FxHashMap::default();
        let mut scratch: Vec<Value> = Vec::with_capacity(positions.len());
        for (t, f) in self.iter() {
            project_into(t, &positions, &mut scratch);
            match out.get_mut(scratch.as_slice()) {
                Some(total) => *total = total.saturating_add(f),
                None => {
                    out.insert(TupleKey::from_slice(&scratch), f);
                }
            }
        }
        if onto.is_empty() && out.is_empty() {
            out.insert(TupleKey::from_slice(&[]), 0);
        }
        Ok(out)
    }

    /// Maximum degree onto `y`: `max_t deg_{i,y}(t)` (zero for an empty relation).
    /// Never sorts: a pure fold over the hash groups.
    pub fn max_degree(&self, onto: &[AttrId]) -> Result<u64> {
        Ok(self
            .degree_map_key(onto)?
            .values()
            .copied()
            .max()
            .unwrap_or(0))
    }

    /// The set of distinct values the relation takes on `y` (the active domain
    /// of `y` within this relation).
    pub fn active_domain(&self, onto: &[AttrId]) -> Result<BTreeSet<Vec<Value>>> {
        let positions = project_positions(&self.attrs, onto)?;
        Ok(self
            .iter()
            .map(|(t, _)| project_with_positions(t, &positions))
            .collect())
    }

    /// Restricts the relation to tuples whose projection onto `onto` lies in
    /// `allowed`.  This is the sub-relation `R_i^j` used by the partition
    /// procedures (Algorithms 5 and 7).
    pub fn restrict(&self, onto: &[AttrId], allowed: &BTreeSet<Vec<Value>>) -> Result<Relation> {
        let positions = project_positions(&self.attrs, onto)?;
        let mut out = Relation::new(self.attrs.clone())?;
        for (t, f) in self.iter() {
            let key = project_with_positions(t, &positions);
            if allowed.contains(&key) {
                out.add(t.clone(), f)?;
            }
        }
        Ok(out)
    }

    /// Retains only tuples satisfying `pred` (given the tuple and frequency).
    pub fn filter(&self, mut pred: impl FnMut(&[Value], u64) -> bool) -> Result<Relation> {
        let mut out = Relation::new(self.attrs.clone())?;
        for (t, f) in self.iter() {
            if pred(t, f) {
                out.add(t.clone(), f)?;
            }
        }
        Ok(out)
    }

    /// Validates every tuple's values against the per-attribute domain sizes.
    pub fn validate_domains(&self, domain_size_of: impl Fn(AttrId) -> u64) -> Result<()> {
        for (t, _) in self.iter() {
            for (pos, attr) in self.attrs.iter().enumerate() {
                let ds = domain_size_of(*attr);
                if t[pos] >= ds {
                    return Err(RelationalError::ValueOutOfDomain {
                        attr: attr.0,
                        value: t[pos],
                        domain_size: ds,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn sample() -> Relation {
        Relation::from_tuples(
            ids(&[0, 1]),
            vec![
                (vec![0, 0], 2),
                (vec![0, 1], 1),
                (vec![1, 1], 3),
                (vec![2, 0], 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_attrs() {
        assert!(Relation::new(ids(&[0, 1])).is_ok());
        assert!(Relation::new(vec![]).is_err());
        assert!(Relation::new(ids(&[1, 0])).is_err());
        assert!(Relation::new(ids(&[1, 1])).is_err());
    }

    #[test]
    fn add_and_freq() {
        let r = sample();
        assert_eq!(r.freq(&[0, 0]), 2);
        assert_eq!(r.freq(&[5, 5]), 0);
        assert_eq!(r.total(), 7);
        assert_eq!(r.distinct_count(), 4);
    }

    #[test]
    fn arity_checked() {
        let mut r = sample();
        assert!(r.add(vec![1], 1).is_err());
        assert!(r.add(vec![1, 2, 3], 1).is_err());
    }

    #[test]
    fn add_remove_one_roundtrip() {
        let mut r = sample();
        r.add_one(vec![0, 0]).unwrap();
        assert_eq!(r.freq(&[0, 0]), 3);
        r.remove_one(&[0, 0]).unwrap();
        assert_eq!(r.freq(&[0, 0]), 2);
        r.remove_one(&[0, 1]).unwrap();
        assert_eq!(r.freq(&[0, 1]), 0);
        assert!(r.remove_one(&[0, 1]).is_err());
    }

    #[test]
    fn zero_frequency_not_stored() {
        let mut r = Relation::new(ids(&[0])).unwrap();
        r.add(vec![3], 0).unwrap();
        assert_eq!(r.distinct_count(), 0);
        r.set(vec![3], 5).unwrap();
        assert_eq!(r.distinct_count(), 1);
        r.set(vec![3], 0).unwrap();
        assert_eq!(r.distinct_count(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn degree_map_matches_definition() {
        let r = sample();
        // deg onto attribute 0
        let d = r.degree_map(&ids(&[0])).unwrap();
        assert_eq!(d.get(&vec![0]).copied(), Some(3));
        assert_eq!(d.get(&vec![1]).copied(), Some(3));
        assert_eq!(d.get(&vec![2]).copied(), Some(1));
        // deg onto attribute 1
        let d = r.degree_map(&ids(&[1])).unwrap();
        assert_eq!(d.get(&vec![0]).copied(), Some(3));
        assert_eq!(d.get(&vec![1]).copied(), Some(4));
        // empty projection sums everything
        let d = r.degree_map(&[]).unwrap();
        assert_eq!(d.get(&Vec::new()).copied(), Some(7));
        assert_eq!(r.max_degree(&ids(&[1])).unwrap(), 4);
    }

    #[test]
    fn restrict_keeps_only_allowed() {
        let r = sample();
        let mut allowed = BTreeSet::new();
        allowed.insert(vec![1u64]);
        let sub = r.restrict(&ids(&[1]), &allowed).unwrap();
        assert_eq!(sub.total(), 4);
        assert_eq!(sub.freq(&[0, 1]), 1);
        assert_eq!(sub.freq(&[1, 1]), 3);
        assert_eq!(sub.freq(&[0, 0]), 0);
    }

    #[test]
    fn active_domain_and_filter() {
        let r = sample();
        let dom = r.active_domain(&ids(&[0])).unwrap();
        assert_eq!(dom.len(), 3);
        let only_heavy = r.filter(|_, f| f >= 2).unwrap();
        assert_eq!(only_heavy.total(), 5);
    }

    #[test]
    fn validate_domains_flags_violations() {
        let r = sample();
        assert!(r.validate_domains(|_| 10).is_ok());
        assert!(r.validate_domains(|_| 2).is_err());
    }
}
