//! A dependency-free parallel execution layer for the relational engine.
//!
//! The build environment is offline (no `rayon`), so this module hand-rolls
//! the small amount of machinery the engine needs: a [`Parallelism`] knob and
//! a scoped worker pool ([`par_map`] / [`par_map_ranges`]) built from
//! `std::thread::scope` plus an mpsc channel.  Workers are *scoped*: every
//! invocation spawns, runs and joins its threads before returning, so no
//! thread ever outlives the borrowed query/instance data it operates on and
//! no global pool state exists to configure or leak.
//!
//! ### Scheduling: morsel-driven work stealing
//!
//! Work is dispatched as **morsels** — small contiguous units of task
//! indices — claimed dynamically from a shared [`AtomicUsize`] counter:
//! every worker loops `counter.fetch_add(1)` and runs the morsel it drew
//! until the counter passes the morsel count.  A worker stuck on a heavy
//! morsel (a skewed hash bucket, a hot lattice subset) simply claims fewer
//! morsels while the others drain the queue, so imbalance self-corrects
//! without any cost model.  The historical fixed-stride splitter (worker `w`
//! of `W` runs morsels `w, w + W, w + 2W, …`) is retained behind
//! [`Schedule::Strided`] as a cross-check reference and for measuring what
//! stealing buys; [`SchedulerStats`] reports how many morsels each worker
//! actually claimed so benches can show the rebalancing directly.
//!
//! ### Determinism contract
//!
//! Parallel execution must be **byte-identical** to sequential execution —
//! the engine's downstream consumers are seeded randomized algorithms whose
//! reproducibility contract (see the crate docs) would otherwise break.
//! Under the morsel model the contract splits cleanly in two:
//!
//! 1. **Claiming order may vary.**  Which worker runs which morsel — and in
//!    what real-time order morsels execute — depends on scheduling, load and
//!    timing, and is *not* reproducible.  Nothing observable may depend on
//!    it, and nothing does: morsel *boundaries* are a pure function of the
//!    input length ([`morsel_ranges`], [`chunk_ranges`]), only the
//!    assignment of morsels to workers floats.
//! 2. **Merge order may not.**  Every result is delivered back tagged with
//!    its morsel index and merged in morsel order.  For range-partitioned
//!    loops ([`par_map_ranges`], [`par_map_morsels`]) each morsel emits its
//!    outputs in input order, so the concatenation in morsel order equals
//!    the sequential emission order *regardless of the worker count, the
//!    morsel size, or which worker claimed what*.
//!
//! Consequently `Parallelism::threads(1)`, `threads(4)` and `threads(64)` —
//! and [`Schedule::Stealing`] vs [`Schedule::Strided`], at any morsel size
//! down to 1 — all produce identical bytes; only wall-clock time and the
//! per-worker claim counts differ.
//!
//! ### Panic handling
//!
//! A panicking task poisons nothing: the worker's channel sender is dropped,
//! the coordinating thread stops collecting, and `std::thread::scope`
//! re-raises the worker's panic payload on the calling thread once all
//! threads are joined.  Callers observe the original panic (message intact)
//! exactly as they would under sequential execution — no deadlock, no
//! swallowed error.
//!
//! ### Choosing a parallelism level
//!
//! [`Parallelism::default`] resolves to [`Parallelism::available`]: the
//! `DPSYN_THREADS` environment variable when set (CI uses this to force the
//! sequential path), otherwise [`std::thread::available_parallelism`].
//! `Parallelism::SEQUENTIAL` (one thread) runs every loop inline on the
//! calling thread — no threads are spawned, no buffers are re-copied, and
//! the output is byte-identical to the pre-parallel engine's.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// How many worker threads the engine may use for one parallel operation.
///
/// `Parallelism(1)` is the sequential path: no threads are spawned and every
/// loop runs inline.  Results are byte-identical at every level (see the
/// module docs), so callers can default to [`Parallelism::available`] and
/// drop to [`Parallelism::SEQUENTIAL`] only to shed thread overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(NonZeroUsize);

/// Parses a `DPSYN_THREADS`-style value: a positive integer (surrounding
/// whitespace tolerated) or nothing.  Zero, negative and non-numeric values
/// are ignored so a broken environment degrades to the machine default
/// instead of erroring.
fn parse_thread_env(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

impl Parallelism {
    /// The sequential path: one worker, no spawned threads.
    pub const SEQUENTIAL: Parallelism = Parallelism(NonZeroUsize::MIN);

    /// Exactly `n` workers (`n = 0` is treated as 1).
    pub fn threads(n: usize) -> Self {
        Parallelism(NonZeroUsize::new(n.max(1)).expect("clamped to at least 1"))
    }

    /// The environment's parallelism: `DPSYN_THREADS` when set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`] (1 if even
    /// that is unavailable).
    ///
    /// **Read once per process.**  The probe result is cached in a
    /// `OnceLock` on the first call and never re-read: a process observes
    /// exactly one value for its whole lifetime, so changing
    /// `DPSYN_THREADS` after the engine has run (e.g. from a test) has no
    /// effect.  This is deliberate — a mid-process flip would let two calls
    /// in one release pipeline disagree about the worker count, and while
    /// outputs would still be byte-identical (see the module docs), CI
    /// matrices that pin `DPSYN_THREADS` rely on the value being stable
    /// from the first join to the last.  The behavior is pinned by
    /// `available_parallelism_is_read_once_per_process` in this module's
    /// tests.
    pub fn available() -> Self {
        static AVAILABLE: OnceLock<usize> = OnceLock::new();
        let n = *AVAILABLE.get_or_init(|| {
            let env = std::env::var("DPSYN_THREADS").ok();
            if let Some(n) = parse_thread_env(env.as_deref()) {
                return n;
            }
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        Parallelism::threads(n)
    }

    /// The worker count.
    #[inline]
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// Whether this is the sequential (single-worker) path.
    #[inline]
    pub fn is_sequential(self) -> bool {
        self.0.get() == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// How morsels are assigned to workers.  Outputs are byte-identical under
/// both schedules (see the module docs); only wall-clock time and the
/// per-worker claim counts differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// Morsels are claimed dynamically from a shared atomic counter, so a
    /// worker stalled on a heavy morsel claims fewer while idle workers
    /// drain the rest.  The engine default.
    #[default]
    Stealing,
    /// The historical fixed-stride assignment: worker `w` of `W` runs
    /// morsels `w, w + W, w + 2W, …` regardless of cost.  Kept as the
    /// determinism cross-check reference and the bench baseline.
    Strided,
}

/// Per-invocation scheduler telemetry: how many morsels each worker claimed.
///
/// Under [`Schedule::Stealing`] on a skewed workload the spread between
/// [`max_claimed`](SchedulerStats::max_claimed) and
/// [`min_claimed`](SchedulerStats::min_claimed) shows the rebalancing at
/// work — the worker that drew the heavy morsel claims few, the others pick
/// up the slack.  Under [`Schedule::Strided`] the counts are fixed by the
/// stride arithmetic no matter what the morsels cost.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    claimed: Vec<usize>,
}

impl SchedulerStats {
    /// Builds stats from explicit per-worker claim counts (index 0 is the
    /// calling thread) — for callers that run work inline outside the pool
    /// but still want it accounted in an [`absorb`](Self::absorb) aggregate.
    pub fn from_claims(claimed: Vec<usize>) -> Self {
        SchedulerStats { claimed }
    }

    /// Morsels claimed per worker; index 0 is the calling thread.
    pub fn claimed(&self) -> &[usize] {
        &self.claimed
    }

    /// The number of workers that participated.
    pub fn workers(&self) -> usize {
        self.claimed.len()
    }

    /// Total morsels executed.
    pub fn total(&self) -> usize {
        self.claimed.iter().sum()
    }

    /// The largest per-worker claim count (0 if no workers ran).
    pub fn max_claimed(&self) -> usize {
        self.claimed.iter().copied().max().unwrap_or(0)
    }

    /// The smallest per-worker claim count (0 if no workers ran).
    pub fn min_claimed(&self) -> usize {
        self.claimed.iter().copied().min().unwrap_or(0)
    }

    /// Accumulates another invocation's counts into this one, worker by
    /// worker (used to aggregate stats across the levels of a lattice
    /// populate).  Worker lists of different lengths are zero-padded.
    pub fn absorb(&mut self, other: &SchedulerStats) {
        if self.claimed.len() < other.claimed.len() {
            self.claimed.resize(other.claimed.len(), 0);
        }
        for (mine, theirs) in self.claimed.iter_mut().zip(other.claimed.iter()) {
            *mine += *theirs;
        }
    }
}

/// A worker's source of morsel indices under a given [`Schedule`].
enum Claimer<'a> {
    Stealing {
        counter: &'a AtomicUsize,
        tasks: usize,
    },
    Strided(std::iter::StepBy<Range<usize>>),
}

impl Claimer<'_> {
    fn new(
        sched: Schedule,
        counter: &AtomicUsize,
        w: usize,
        workers: usize,
        tasks: usize,
    ) -> Claimer<'_> {
        match sched {
            Schedule::Stealing => Claimer::Stealing { counter, tasks },
            Schedule::Strided => Claimer::Strided((w..tasks).step_by(workers)),
        }
    }

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            Claimer::Stealing { counter, tasks } => {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                (i < *tasks).then_some(i)
            }
            Claimer::Strided(it) => it.next(),
        }
    }
}

/// Runs `f(0), …, f(tasks - 1)` on up to `par` workers under `sched` and
/// returns the results **in task order** plus the per-worker claim counts.
///
/// This is the scheduler core: morsel indices are claimed (stolen or
/// strided), workers 1… send `(index, result)` pairs over a channel while
/// worker 0 (the calling thread) claims from the same queue and fills its
/// own slots directly, and the slot vector — indexed by task — is the
/// merge-in-morsel-order step that makes output independent of who ran
/// what.  With `par = 1` or `tasks ≤ 1` everything runs inline: no thread
/// is spawned and the stats report one worker claiming everything.
///
/// A panicking task propagates its payload to the caller after all workers
/// have been joined (see the module docs).
pub fn par_map_sched_stats<T, F>(
    par: Parallelism,
    sched: Schedule,
    tasks: usize,
    f: F,
) -> (Vec<T>, SchedulerStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = par.get().min(tasks.max(1));
    if workers <= 1 {
        let out: Vec<T> = (0..tasks).map(f).collect();
        return (
            out,
            SchedulerStats {
                claimed: vec![tasks],
            },
        );
    }

    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let counter = AtomicUsize::new(0);
    let claim_counts: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let f = &f;
        let counter = &counter;
        let claim_counts = &claim_counts;
        for (w, count) in claim_counts.iter().enumerate().skip(1) {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut claimer = Claimer::new(sched, counter, w, workers, tasks);
                let mut claimed = 0usize;
                while let Some(i) = claimer.next() {
                    claimed += 1;
                    // A closed receiver means the coordinator bailed out
                    // (it panicked in its own morsels); stop early.
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
                count.store(claimed, Ordering::Relaxed);
            });
        }
        drop(tx);
        // Worker 0 claims from the same queue inline on the calling thread.
        let mut claimer = Claimer::new(sched, counter, 0, workers, tasks);
        let mut claimed = 0usize;
        while let Some(i) = claimer.next() {
            claimed += 1;
            slots[i] = Some(f(i));
        }
        claim_counts[0].store(claimed, Ordering::Relaxed);
        // Collect until every sender is gone.  If a worker panicked, its
        // sender is dropped early, the loop ends, and the scope re-raises
        // the panic when joining below.
        for (i, value) in rx {
            slots[i] = Some(value);
        }
    });
    let out: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("all workers completed (scope propagates panics)"))
        .collect();
    let claimed = claim_counts
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    (out, SchedulerStats { claimed })
}

/// [`par_map_sched_stats`] without the telemetry.
pub fn par_map_sched<T, F>(par: Parallelism, sched: Schedule, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_sched_stats(par, sched, tasks, f).0
}

/// Runs `f(0), …, f(tasks - 1)` on up to `par` workers and returns the
/// results **in task order**, claiming tasks by work stealing
/// ([`Schedule::Stealing`]).  Each task is its own morsel, so this is the
/// maximal-interleaving case (morsel size 1).
///
/// A panicking task propagates its payload to the caller after all workers
/// have been joined (see the module docs).
pub fn par_map<T, F>(par: Parallelism, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_sched(par, Schedule::Stealing, tasks, f)
}

/// Splits `0..len` into at most `chunks` contiguous ranges of near-equal
/// length (the first `len % chunks` ranges are one longer), in ascending
/// order.  `len = 0` yields a single empty range so callers always receive
/// at least one chunk.  The split depends only on `len` and `chunks`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        // One empty chunk so callers always receive at least one range.
        return vec![Range { start: 0, end: 0 }];
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Splits `0..len` into contiguous morsels of exactly `morsel` indices (the
/// last may be shorter), in ascending order.  `len = 0` yields a single
/// empty range; `morsel = 0` is treated as 1.  The split depends only on
/// `len` and `morsel` — never on scheduling.
pub fn morsel_ranges(len: usize, morsel: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return vec![Range { start: 0, end: 0 }];
    }
    let morsel = morsel.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(morsel));
    let mut start = 0;
    while start < len {
        let end = (start + morsel).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Maps `f` over fixed-size morsels of `0..len` on up to `par` workers
/// under `sched`, returning the per-morsel results **in morsel order** plus
/// the per-worker claim counts.
///
/// Morsel boundaries come from [`morsel_ranges`] (a pure function of `len`
/// and `morsel`), so concatenating the returned parts reproduces the
/// sequential emission order byte for byte at every worker count, morsel
/// size (including 1) and schedule.
pub fn par_map_morsels_stats<T, F>(
    par: Parallelism,
    sched: Schedule,
    len: usize,
    morsel: usize,
    f: F,
) -> (Vec<T>, SchedulerStats)
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = morsel_ranges(len, morsel);
    par_map_sched_stats(par, sched, ranges.len(), |i| f(ranges[i].clone()))
}

/// [`par_map_morsels_stats`] with work stealing and no telemetry.
pub fn par_map_morsels<T, F>(par: Parallelism, len: usize, morsel: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    par_map_morsels_stats(par, Schedule::Stealing, len, morsel, f).0
}

/// Partitions `0..len` into contiguous morsels of at least `min_chunk`
/// indices, maps `f` over the morsels on up to `par` workers (work
/// stealing), and returns the per-morsel results **in range order**.
///
/// This is the `par_chunks`-style entry point behind the partitioned probe
/// loop: each morsel emits its outputs in input order, so concatenating the
/// returned parts reproduces the sequential emission order byte for byte at
/// every worker count.  The range is over-decomposed (up to 8 morsels per
/// worker) so the stealer has enough slack to rebalance a skewed morsel.
pub fn par_map_ranges<T, F>(par: Parallelism, len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    par_map_ranges_sched(par, Schedule::Stealing, len, min_chunk, f)
}

/// [`par_map_ranges`] under an explicit [`Schedule`] — the cross-check and
/// bench entry point for stealing-vs-strided comparisons.  The morsel
/// boundaries are identical under both schedules.
pub fn par_map_ranges_sched<T, F>(
    par: Parallelism,
    sched: Schedule,
    len: usize,
    min_chunk: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let workers = par.get();
    if workers <= 1 || len <= min_chunk.max(1) {
        return vec![f(0..len)];
    }
    let chunks = (len / min_chunk.max(1)).clamp(1, workers * 8);
    let ranges = chunk_ranges(len, chunks);
    par_map_sched(par, sched, ranges.len(), |i| f(ranges[i].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_levels() {
        assert_eq!(Parallelism::SEQUENTIAL.get(), 1);
        assert!(Parallelism::SEQUENTIAL.is_sequential());
        assert_eq!(Parallelism::threads(0).get(), 1);
        assert_eq!(Parallelism::threads(6).get(), 6);
        assert!(!Parallelism::threads(2).is_sequential());
        assert!(Parallelism::available().get() >= 1);
    }

    #[test]
    fn thread_env_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_thread_env(None), None);
        assert_eq!(parse_thread_env(Some("")), None);
        assert_eq!(parse_thread_env(Some("0")), None);
        assert_eq!(parse_thread_env(Some("-3")), None);
        assert_eq!(parse_thread_env(Some("four")), None);
        assert_eq!(parse_thread_env(Some("4")), Some(4));
        assert_eq!(parse_thread_env(Some("  16\n")), Some(16));
    }

    /// Pins the documented `OnceLock` behavior of [`Parallelism::available`]:
    /// the environment is read once per process, so later changes to
    /// `DPSYN_THREADS` are invisible.
    #[test]
    fn available_parallelism_is_read_once_per_process() {
        // Force the cache to initialize from the *current* environment
        // before touching it — this also protects concurrently running
        // tests from ever observing the sentinel value below.
        let first = Parallelism::available();
        let saved = std::env::var("DPSYN_THREADS").ok();
        std::env::set_var("DPSYN_THREADS", "7777");
        let second = Parallelism::available();
        match saved {
            Some(v) => std::env::set_var("DPSYN_THREADS", v),
            None => std::env::remove_var("DPSYN_THREADS"),
        }
        assert_eq!(
            first, second,
            "DPSYN_THREADS must be read once per process, not per call"
        );
        assert_ne!(second.get(), 7777, "cached value leaked a later env write");
    }

    #[test]
    fn par_map_matches_sequential_map_at_every_width() {
        let f = |i: usize| (i * i) as u64;
        let expect: Vec<u64> = (0..257).map(f).collect();
        for threads in [1, 2, 3, 4, 8, 300] {
            assert_eq!(par_map(Parallelism::threads(threads), 257, f), expect);
        }
        assert!(par_map(Parallelism::threads(4), 0, f).is_empty());
        assert_eq!(par_map(Parallelism::threads(4), 1, f), vec![0]);
    }

    #[test]
    fn stealing_and_strided_agree_with_sequential() {
        let f = |i: usize| {
            // Skew: a few tasks are far heavier than the rest.
            let reps = if i.is_multiple_of(97) { 40_000 } else { 50 };
            (0..reps).fold(i as u64, |acc, k| {
                acc.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left((k % 63) as u32)
            })
        };
        let expect: Vec<u64> = (0..311).map(f).collect();
        for threads in [1, 2, 4, 8] {
            let par = Parallelism::threads(threads);
            for sched in [Schedule::Stealing, Schedule::Strided] {
                let (got, stats) = par_map_sched_stats(par, sched, 311, f);
                assert_eq!(got, expect, "threads={threads} sched={sched:?}");
                assert_eq!(stats.total(), 311, "every morsel claimed exactly once");
                assert!(stats.workers() >= 1 && stats.workers() <= threads);
            }
        }
    }

    #[test]
    fn strided_claim_counts_are_fixed_by_arithmetic() {
        let (_, stats) = par_map_sched_stats(Parallelism::threads(4), Schedule::Strided, 10, |i| i);
        // Worker w of 4 runs tasks w, w+4, w+8 … of 10: counts 3, 3, 2, 2.
        assert_eq!(stats.claimed(), &[3, 3, 2, 2]);
        assert_eq!(stats.max_claimed(), 3);
        assert_eq!(stats.min_claimed(), 2);
    }

    #[test]
    fn scheduler_stats_absorb_pads_and_sums() {
        let mut a = SchedulerStats {
            claimed: vec![2, 1],
        };
        a.absorb(&SchedulerStats {
            claimed: vec![1, 1, 5],
        });
        assert_eq!(a.claimed(), &[3, 2, 5]);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_in_order() {
        for len in [0usize, 1, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 7, 2000] {
                let ranges = chunk_ranges(len, chunks);
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start);
                    expect_start = r.end;
                }
                assert_eq!(expect_start, len);
                if len > 0 {
                    assert!(ranges.len() <= chunks.min(len));
                    // Balanced: sizes differ by at most one.
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(hi - lo <= 1);
                }
            }
        }
    }

    #[test]
    fn morsel_ranges_are_fixed_width_and_cover_in_order() {
        for len in [0usize, 1, 7, 64, 1000] {
            for morsel in [0usize, 1, 3, 64, 5000] {
                let ranges = morsel_ranges(len, morsel);
                let mut expect_start = 0;
                for (k, r) in ranges.iter().enumerate() {
                    assert_eq!(r.start, expect_start);
                    expect_start = r.end;
                    if k + 1 < ranges.len() {
                        assert_eq!(r.len(), morsel.max(1), "only the last morsel may be short");
                    }
                }
                assert_eq!(expect_start, len);
            }
        }
    }

    #[test]
    fn par_map_ranges_concatenation_is_order_stable() {
        let data: Vec<u64> = (0..10_000).map(|i| i * 3 + 1).collect();
        let f = |r: Range<usize>| data[r].to_vec();
        let seq: Vec<u64> = f(0..data.len());
        for threads in [1, 2, 4, 9] {
            for sched in [Schedule::Stealing, Schedule::Strided] {
                let parts =
                    par_map_ranges_sched(Parallelism::threads(threads), sched, data.len(), 16, f);
                let merged: Vec<u64> = parts.concat();
                assert_eq!(merged, seq, "threads = {threads}, sched = {sched:?}");
            }
        }
    }

    #[test]
    fn morsel_size_one_maximizes_interleaving_and_stays_byte_identical() {
        let data: Vec<u64> = (0..997u64)
            .map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d))
            .collect();
        let f = |r: Range<usize>| data[r].to_vec();
        let seq: Vec<u64> = f(0..data.len());
        for threads in [1, 2, 4, 8] {
            for sched in [Schedule::Stealing, Schedule::Strided] {
                for morsel in [1usize, 7, 64] {
                    let (parts, stats) = par_map_morsels_stats(
                        Parallelism::threads(threads),
                        sched,
                        data.len(),
                        morsel,
                        f,
                    );
                    assert_eq!(
                        parts.concat(),
                        seq,
                        "threads={threads} sched={sched:?} morsel={morsel}"
                    );
                    assert_eq!(stats.total(), data.len().div_ceil(morsel));
                }
            }
        }
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        for sched in [Schedule::Stealing, Schedule::Strided] {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                par_map_sched(Parallelism::threads(4), sched, 64, |i| {
                    if i == 37 {
                        panic!("worker task failed deliberately");
                    }
                    i
                })
            }));
            assert!(outcome.is_err(), "panic must cross the pool boundary");
        }
    }

    #[test]
    fn sequential_panics_propagate_too() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(Parallelism::SEQUENTIAL, 4, |i| {
                if i == 2 {
                    panic!("sequential task failed deliberately");
                }
                i
            })
        }));
        assert!(outcome.is_err());
    }
}
