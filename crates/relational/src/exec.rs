//! A dependency-free parallel execution layer for the relational engine.
//!
//! The build environment is offline (no `rayon`), so this module hand-rolls
//! the small amount of machinery the engine needs: a [`Parallelism`] knob and
//! a scoped worker pool ([`par_map`] / [`par_map_ranges`]) built from
//! `std::thread::scope` plus an mpsc channel.  Workers are *scoped*: every
//! invocation spawns, runs and joins its threads before returning, so no
//! thread ever outlives the borrowed query/instance data it operates on and
//! no global pool state exists to configure or leak.
//!
//! ### Determinism contract
//!
//! Parallel execution must be **byte-identical** to sequential execution —
//! the engine's downstream consumers are seeded randomized algorithms whose
//! reproducibility contract (see the crate docs) would otherwise break.
//! Two design rules guarantee it:
//!
//! 1. **Deterministic work splitting.**  Tasks are assigned to workers by a
//!    fixed stride (worker `w` of `W` runs tasks `w, w + W, w + 2W, …`), and
//!    [`chunk_ranges`] splits index ranges by a fixed balanced-block rule.
//!    Neither depends on scheduling, load or timing.
//! 2. **Index-ordered merge.**  Every result is delivered back tagged with
//!    its task index and merged in task order.  For range-partitioned loops
//!    ([`par_map_ranges`]) each chunk emits its outputs in input order, so
//!    the concatenation in chunk order equals the sequential emission order
//!    *regardless of the worker count or chunk boundaries*.
//!
//! Consequently `Parallelism::threads(1)`, `threads(4)` and `threads(64)`
//! all produce identical bytes; only wall-clock time differs.
//!
//! ### Panic handling
//!
//! A panicking task poisons nothing: the worker's channel sender is dropped,
//! the coordinating thread stops collecting, and `std::thread::scope`
//! re-raises the worker's panic payload on the calling thread once all
//! threads are joined.  Callers observe the original panic (message intact)
//! exactly as they would under sequential execution — no deadlock, no
//! swallowed error.
//!
//! ### Choosing a parallelism level
//!
//! [`Parallelism::default`] resolves to [`Parallelism::available`]: the
//! `DPSYN_THREADS` environment variable when set (CI uses this to force the
//! sequential path), otherwise [`std::thread::available_parallelism`].
//! `Parallelism::SEQUENTIAL` (one thread) runs every loop inline on the
//! calling thread — no threads are spawned, no buffers are re-copied, and
//! the output is byte-identical to the pre-parallel engine's.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::{mpsc, OnceLock};

/// How many worker threads the engine may use for one parallel operation.
///
/// `Parallelism(1)` is the sequential path: no threads are spawned and every
/// loop runs inline.  Results are byte-identical at every level (see the
/// module docs), so callers can default to [`Parallelism::available`] and
/// drop to [`Parallelism::SEQUENTIAL`] only to shed thread overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// The sequential path: one worker, no spawned threads.
    pub const SEQUENTIAL: Parallelism = Parallelism(NonZeroUsize::MIN);

    /// Exactly `n` workers (`n = 0` is treated as 1).
    pub fn threads(n: usize) -> Self {
        Parallelism(NonZeroUsize::new(n.max(1)).expect("clamped to at least 1"))
    }

    /// The environment's parallelism: `DPSYN_THREADS` when set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`] (1 if even
    /// that is unavailable).  The probe result is cached for the process.
    pub fn available() -> Self {
        static AVAILABLE: OnceLock<usize> = OnceLock::new();
        let n = *AVAILABLE.get_or_init(|| {
            if let Some(n) = std::env::var("DPSYN_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
            {
                return n;
            }
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        Parallelism::threads(n)
    }

    /// The worker count.
    #[inline]
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// Whether this is the sequential (single-worker) path.
    #[inline]
    pub fn is_sequential(self) -> bool {
        self.0.get() == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// Runs `f(0), …, f(tasks - 1)` on up to `par` workers and returns the
/// results **in task order**.
///
/// Work is split deterministically by stride (worker `w` runs tasks
/// `w, w + W, …`); workers 1… send `(index, result)` pairs over a channel
/// while worker 0 (the calling thread) fills its own slots directly.  With
/// `par = 1` or `tasks ≤ 1` everything runs inline — no thread is spawned.
///
/// A panicking task propagates its payload to the caller after all workers
/// have been joined (see the module docs).
pub fn par_map<T, F>(par: Parallelism, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = par.get().min(tasks.max(1));
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }

    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let f = &f;
        for w in 1..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                for i in (w..tasks).step_by(workers) {
                    // A closed receiver means the coordinator bailed out
                    // (it panicked in its own stride); stop early.
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Worker 0 runs its stride inline on the calling thread.
        for i in (0..tasks).step_by(workers) {
            slots[i] = Some(f(i));
        }
        // Collect until every sender is gone.  If a worker panicked, its
        // sender is dropped early, the loop ends, and the scope re-raises
        // the panic when joining below.
        for (i, value) in rx {
            slots[i] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all workers completed (scope propagates panics)"))
        .collect()
}

/// Splits `0..len` into at most `chunks` contiguous ranges of near-equal
/// length (the first `len % chunks` ranges are one longer), in ascending
/// order.  `len = 0` yields a single empty range so callers always receive
/// at least one chunk.  The split depends only on `len` and `chunks`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        // One empty chunk so callers always receive at least one range.
        return vec![Range { start: 0, end: 0 }];
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Partitions `0..len` into contiguous chunks of at least `min_chunk`
/// indices, maps `f` over the chunks on up to `par` workers, and returns the
/// per-chunk results **in range order**.
///
/// This is the `par_chunks`-style entry point behind the partitioned probe
/// loop: each chunk emits its outputs in input order, so concatenating the
/// returned parts reproduces the sequential emission order byte for byte at
/// every worker count.  Chunks are over-decomposed (4 per worker) so a
/// skewed chunk cannot stall the whole loop.
pub fn par_map_ranges<T, F>(par: Parallelism, len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let workers = par.get();
    if workers <= 1 || len <= min_chunk.max(1) {
        return vec![f(0..len)];
    }
    let chunks = (len / min_chunk.max(1)).clamp(1, workers * 4);
    let ranges = chunk_ranges(len, chunks);
    par_map(par, ranges.len(), |i| f(ranges[i].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_levels() {
        assert_eq!(Parallelism::SEQUENTIAL.get(), 1);
        assert!(Parallelism::SEQUENTIAL.is_sequential());
        assert_eq!(Parallelism::threads(0).get(), 1);
        assert_eq!(Parallelism::threads(6).get(), 6);
        assert!(!Parallelism::threads(2).is_sequential());
        assert!(Parallelism::available().get() >= 1);
    }

    #[test]
    fn par_map_matches_sequential_map_at_every_width() {
        let f = |i: usize| (i * i) as u64;
        let expect: Vec<u64> = (0..257).map(f).collect();
        for threads in [1, 2, 3, 4, 8, 300] {
            assert_eq!(par_map(Parallelism::threads(threads), 257, f), expect);
        }
        assert!(par_map(Parallelism::threads(4), 0, f).is_empty());
        assert_eq!(par_map(Parallelism::threads(4), 1, f), vec![0]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_in_order() {
        for len in [0usize, 1, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 7, 2000] {
                let ranges = chunk_ranges(len, chunks);
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start);
                    expect_start = r.end;
                }
                assert_eq!(expect_start, len);
                if len > 0 {
                    assert!(ranges.len() <= chunks.min(len));
                    // Balanced: sizes differ by at most one.
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(hi - lo <= 1);
                }
            }
        }
    }

    #[test]
    fn par_map_ranges_concatenation_is_order_stable() {
        let data: Vec<u64> = (0..10_000).map(|i| i * 3 + 1).collect();
        let f = |r: Range<usize>| data[r].to_vec();
        let seq: Vec<u64> = f(0..data.len());
        for threads in [1, 2, 4, 9] {
            let parts = par_map_ranges(Parallelism::threads(threads), data.len(), 16, f);
            let merged: Vec<u64> = parts.concat();
            assert_eq!(merged, seq, "threads = {threads}");
        }
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(Parallelism::threads(4), 64, |i| {
                if i == 37 {
                    panic!("worker task failed deliberately");
                }
                i
            })
        }));
        assert!(outcome.is_err(), "panic must cross the pool boundary");
    }

    #[test]
    fn sequential_panics_propagate_too() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(Parallelism::SEQUENTIAL, 4, |i| {
                if i == 2 {
                    panic!("sequential task failed deliberately");
                }
                i
            })
        }));
        assert!(outcome.is_err());
    }
}
