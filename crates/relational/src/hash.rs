//! Fast, non-cryptographic hashing for the join engine.
//!
//! The hot maps of the relational layer (join results, join-build indexes,
//! degree maps, sub-join caches) are keyed by short sequences of `u64`
//! values.  `std`'s default SipHash is safe against adversarial collisions
//! but costs far more than the arithmetic it guards here, so this module
//! provides an `FxHash`-style multiply-rotate hasher (the rustc hasher) and
//! map/set aliases built on it.
//!
//! Determinism note: these maps have **no deterministic iteration order**.
//! Everything that leaves the relational engine is sorted on emit (see the
//! crate-level "Determinism" docs), so downstream consumers never observe
//! hash order.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of the Fx hash (a 64-bit golden-ratio prime).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHasher`: one multiply and one rotate per 8-byte word.
///
/// Not collision-resistant against adversaries; inputs here are tuple values
/// from finite attribute domains, produced by the engine itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hasher.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_of(&[1u64, 2, 3][..]), hash_of(&vec![1u64, 2, 3][..]));
        assert_ne!(hash_of(&[1u64, 2, 3][..]), hash_of(&[1u64, 2, 4][..]));
        assert_ne!(hash_of(&[0u64][..]), hash_of(&[0u64, 0][..]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(vec![i, i * 2], i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&vec![i, i * 2]).copied(), Some(i));
        }
    }

    #[test]
    fn byte_write_path_consistent_with_word_path() {
        // Hashing a &str exercises the `write` fallback.
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }
}
