//! Fractional edge covers and the AGM bound (Appendix B.3).
//!
//! The worst-case error analysis of the paper bounds `count(I) ≤ n^{ρ(H)}` via
//! the AGM bound, where `ρ(H)` is the optimal value of the fractional
//! edge-cover LP:
//!
//! ```text
//! minimize   Σ_i W_i
//! subject to Σ_{i : x ∈ x_i} W_i ≥ 1      for every attribute x
//!            0 ≤ W_i ≤ 1                  for every relation i
//! ```
//!
//! The number of relations `m` is a constant (data complexity), so we solve
//! the LP exactly by enumerating basic feasible solutions: every vertex of the
//! feasible polytope is determined by `m` tight constraints chosen among the
//! coverage constraints and the box constraints.

use crate::attr::AttrId;
use crate::hypergraph::JoinQuery;
use crate::Result;

/// Solves a small dense linear system `a · x = b` by Gaussian elimination with
/// partial pivoting.  Returns `None` when the system is (numerically) singular.
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot selection.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            // Two distinct rows of `a` are touched per iteration; index-based
            // access keeps the disjoint borrows obvious.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

/// A generic fractional edge cover solver over an explicit hypergraph:
/// `vertices` is the attribute set to cover and `edges` the hyperedges
/// (attribute lists).  Attributes in `vertices` not covered by any edge make
/// the LP infeasible, in which case `None` is returned.
pub fn cover_weights(vertices: &[AttrId], edges: &[Vec<AttrId>]) -> Option<Vec<f64>> {
    let m = edges.len();
    if m == 0 {
        return if vertices.is_empty() {
            Some(Vec::new())
        } else {
            None
        };
    }
    // Feasibility pre-check: every vertex must appear in some edge.
    for v in vertices {
        if !edges.iter().any(|e| e.binary_search(v).is_ok()) {
            return None;
        }
    }
    // Constraint rows: coverage rows (Σ a_i W_i ≥ 1) then box rows
    // (W_i ≥ 0 as -W_i ≥ -1·0, W_i ≤ 1).  We store each as (coeffs, rhs, is_eq_candidate).
    struct Row {
        coeffs: Vec<f64>,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for v in vertices {
        let coeffs: Vec<f64> = edges
            .iter()
            .map(|e| if e.binary_search(v).is_ok() { 1.0 } else { 0.0 })
            .collect();
        rows.push(Row { coeffs, rhs: 1.0 });
    }
    for i in 0..m {
        let mut low = vec![0.0; m];
        low[i] = 1.0;
        rows.push(Row {
            coeffs: low.clone(),
            rhs: 0.0,
        }); // W_i = 0 candidate
        rows.push(Row {
            coeffs: low,
            rhs: 1.0,
        }); // W_i = 1 candidate
    }

    let feasible = |w: &[f64]| -> bool {
        for v in vertices {
            let sum: f64 = edges
                .iter()
                .zip(w)
                .filter(|(e, _)| e.binary_search(v).is_ok())
                .map(|(_, wi)| *wi)
                .sum();
            if sum < 1.0 - 1e-7 {
                return false;
            }
        }
        w.iter().all(|&wi| (-1e-9..=1.0 + 1e-9).contains(&wi))
    };

    // Enumerate all size-m subsets of rows as tight constraints.
    let mut best: Option<(f64, Vec<f64>)> = None;
    let row_count = rows.len();
    let mut indices: Vec<usize> = (0..m).collect();
    loop {
        // Solve the square system given by the chosen tight rows.
        let a: Vec<Vec<f64>> = indices.iter().map(|&i| rows[i].coeffs.clone()).collect();
        let b: Vec<f64> = indices.iter().map(|&i| rows[i].rhs).collect();
        if let Some(w) = solve_linear_system(a, b) {
            if feasible(&w) {
                let obj: f64 = w.iter().sum();
                let better = match &best {
                    None => true,
                    Some((cur, _)) => obj < *cur - 1e-12,
                };
                if better {
                    best = Some((obj, w));
                }
            }
        }
        // Advance the combination (lexicographic next subset).
        let mut i = m;
        loop {
            if i == 0 {
                return best.map(|(_, w)| w);
            }
            i -= 1;
            if indices[i] + (m - i) < row_count {
                indices[i] += 1;
                for j in i + 1..m {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Fractional edge-cover weights of a join query (one weight per relation).
pub fn fractional_edge_cover(query: &JoinQuery) -> Result<Vec<f64>> {
    let attrs: Vec<AttrId> = query
        .all_attrs()
        .into_iter()
        .filter(|a| !query.atom(*a).is_empty())
        .collect();
    let edges: Vec<Vec<AttrId>> = query.relations().to_vec();
    Ok(cover_weights(&attrs, &edges)
        .expect("every attribute of a join query is covered by its own relation"))
}

/// The fractional edge-cover number `ρ(H)`.
pub fn fractional_edge_cover_number(query: &JoinQuery) -> Result<f64> {
    Ok(fractional_edge_cover(query)?.iter().sum())
}

/// The AGM bound `n^{ρ(H)}` on the join size of any instance of input size `n`
/// whose relations are set-valued (frequencies in `{0, 1}`).
pub fn agm_bound(query: &JoinQuery, n: u64) -> Result<f64> {
    Ok((n as f64).powf(fractional_edge_cover_number(query)?))
}

/// Fractional edge-cover number of the residual query `H_{E,y}` (relations in
/// `e` with the attributes `removed` deleted) — the quantity `ρ(H_{E,∂E})`
/// appearing in the worst-case error bound of Appendix B.3.
pub fn residual_cover_number(
    query: &JoinQuery,
    e: &[usize],
    removed: &[AttrId],
) -> Result<Option<f64>> {
    query.check_subset(e)?;
    let union = query.union_attrs(e)?;
    let vertices: Vec<AttrId> = crate::tuple::diff_attrs(&union, removed);
    let edges: Vec<Vec<AttrId>> = e
        .iter()
        .map(|&i| crate::tuple::diff_attrs(query.relation_attrs(i), removed))
        .filter(|attrs| !attrs.is_empty())
        .collect();
    Ok(cover_weights(&vertices, &edges).map(|w| w.iter().sum()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_table_cover_is_two() {
        // A appears only in R1 and C only in R2, so both weights must be 1.
        let q = JoinQuery::two_table(4, 4, 4);
        let rho = fractional_edge_cover_number(&q).unwrap();
        assert!((rho - 2.0).abs() < 1e-6, "got {rho}");
    }

    #[test]
    fn triangle_cover_is_three_halves() {
        let q = JoinQuery::triangle(4);
        let rho = fractional_edge_cover_number(&q).unwrap();
        assert!((rho - 1.5).abs() < 1e-6, "got {rho}");
        let w = fractional_edge_cover(&q).unwrap();
        assert_eq!(w.len(), 3);
        for wi in w {
            assert!((wi - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn path_cover() {
        // Path of 3 relations R1(A0,A1) R2(A1,A2) R3(A2,A3): the end attributes
        // force W1 = W3 = 1, and A1, A2 are then covered, so W2 = 0 → ρ = 2.
        let q = JoinQuery::path(3, 4).unwrap();
        let rho = fractional_edge_cover_number(&q).unwrap();
        assert!((rho - 2.0).abs() < 1e-6, "got {rho}");
    }

    #[test]
    fn star_cover_is_m() {
        // Each petal attribute appears in exactly one relation, so all weights
        // are 1 and ρ = m.
        let q = JoinQuery::star(4, 4).unwrap();
        let rho = fractional_edge_cover_number(&q).unwrap();
        assert!((rho - 4.0).abs() < 1e-6, "got {rho}");
    }

    #[test]
    fn agm_bound_value() {
        let q = JoinQuery::triangle(4);
        let bound = agm_bound(&q, 100).unwrap();
        assert!((bound - 100f64.powf(1.5)).abs() < 1e-6);
    }

    #[test]
    fn residual_cover_of_two_table_boundary() {
        let q = JoinQuery::two_table(4, 4, 4);
        // H_{E={0}, ∂E={B}}: relation {A,B} minus {B} = {A}; ρ = 1.
        let rho = residual_cover_number(&q, &[0], &[AttrId(1)]).unwrap();
        assert_eq!(rho, Some(1.0));
        // Removing everything leaves an empty vertex set: ρ = 0.
        let rho = residual_cover_number(&q, &[0], &[AttrId(0), AttrId(1)]).unwrap();
        assert_eq!(rho, Some(0.0));
    }

    #[test]
    fn infeasible_cover_returns_none() {
        // A vertex not covered by any edge.
        assert_eq!(cover_weights(&[AttrId(0)], &[]), None);
    }

    #[test]
    fn linear_solver_smoke() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }
}
