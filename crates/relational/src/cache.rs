//! Shared sub-join caching for relation-subset enumerations.
//!
//! Residual sensitivity (Definition 3.6) and the degree statistics of
//! Definition 4.7 evaluate sub-joins for *many* subsets `E ⊆ [m]` of the same
//! instance — the residual computation touches every proper subset, `2^m` of
//! them.  Recomputing each sub-join from the base relations repeats almost
//! all of the work: the join of `{0, 1, 2}` contains the join of `{0, 1}` as
//! an intermediate.
//!
//! [`SubJoinCache`] memoises sub-join results keyed by the subset's bitmask.
//! A subset's result is computed with **one** binary hash-join step from the
//! cached result of the subset minus its highest relation index, so the
//! whole `2^m` enumeration performs exactly one join step per *distinct*
//! non-singleton subset instead of up to `m - 1` steps per subset — and each
//! shared prefix is computed once, ever.
//!
//! The cache borrows the query and instance immutably; drop it before
//! mutating the instance.  (Prefix decomposition is deliberately fixed —
//! reuse across subsets outweighs per-subset join-order selection here.)
//!
//! **Memory trade-off:** every materialised sub-join stays resident until
//! the cache is dropped, so a full `2^m` enumeration holds all `2^m - 1`
//! results at once where the uncached path held one at a time.  `m` is a
//! small constant in the paper's data-complexity setting, but on instances
//! with very heavy sub-joins callers can bound the footprint by splitting
//! the enumeration across several shorter-lived caches (an eviction policy
//! is tracked as a ROADMAP follow-on).

use crate::error::RelationalError;
use crate::hash::FxHashMap;
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::join::{hash_join_step, JoinResult};
use crate::Result;

/// Memoised sub-join results over one `(query, instance)` pair, keyed by the
/// relation-subset bitmask.
#[derive(Debug)]
pub struct SubJoinCache<'a> {
    query: &'a JoinQuery,
    instance: &'a Instance,
    memo: FxHashMap<u32, JoinResult>,
}

impl<'a> SubJoinCache<'a> {
    /// Creates an empty cache for the given query and instance.
    pub fn new(query: &'a JoinQuery, instance: &'a Instance) -> Result<Self> {
        if instance.num_relations() != query.num_relations() {
            return Err(RelationalError::RelationCountMismatch {
                expected: query.num_relations(),
                got: instance.num_relations(),
            });
        }
        // Strictly below 32 so that `mask >> m` in `join_mask` never shifts
        // by the full bit width.
        if query.num_relations() >= 32 {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "SubJoinCache supports at most 31 relations, got {}",
                query.num_relations()
            )));
        }
        Ok(SubJoinCache {
            query,
            instance,
            memo: FxHashMap::default(),
        })
    }

    /// The query this cache evaluates sub-joins of.
    pub fn query(&self) -> &JoinQuery {
        self.query
    }

    /// The instance this cache evaluates sub-joins over.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Number of sub-join results currently memoised.
    pub fn cached_count(&self) -> usize {
        self.memo.len()
    }

    /// Converts a sorted relation-index subset to its bitmask.
    pub fn mask_of(&self, rels: &[usize]) -> Result<u32> {
        self.query.check_subset(rels)?;
        Ok(rels.iter().fold(0u32, |m, &i| m | (1u32 << i)))
    }

    /// The memoised sub-join of the subset given as a sorted index list.
    /// Computes (and caches) any missing prefixes on the way.
    pub fn join_rels(&mut self, rels: &[usize]) -> Result<&JoinResult> {
        let mask = self.mask_of(rels)?;
        if mask == 0 {
            return Err(RelationalError::InvalidRelationSubset(
                "cannot join an empty set of relations; the empty join is handled by callers"
                    .to_string(),
            ));
        }
        self.join_mask(mask)
    }

    /// The memoised sub-join of the subset given as a bitmask (bit `i` set ⇔
    /// relation `i` participates).  `mask` must be non-zero and within range.
    pub fn join_mask(&mut self, mask: u32) -> Result<&JoinResult> {
        let m = self.query.num_relations();
        if mask == 0 || (mask >> m) != 0 {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "invalid sub-join bitmask {mask:#b} for m = {m}"
            )));
        }
        self.ensure(mask)?;
        Ok(self.memo.get(&mask).expect("ensured above"))
    }

    /// Computes the sub-join of `rels` reusing (and extending) cached
    /// prefixes, but **without memoising the final step**: the returned
    /// result is owned by the caller and freed when dropped.
    ///
    /// Use this when the top-level results are large and consumed once —
    /// e.g. local sensitivity's `m` size-`(m-1)` sub-joins, which share only
    /// their smaller prefixes.  Memoising them would pin `m` full-size join
    /// results in memory for no reuse.
    pub fn join_rels_transient(&mut self, rels: &[usize]) -> Result<JoinResult> {
        let mask = self.mask_of(rels)?;
        if mask == 0 {
            return Err(RelationalError::InvalidRelationSubset(
                "cannot join an empty set of relations; the empty join is handled by callers"
                    .to_string(),
            ));
        }
        let top = (31 - mask.leading_zeros()) as usize;
        let rest = mask & !(1u32 << top);
        // Copy the instance reference out so the shared borrow of the memo
        // entry below doesn't conflict with it.
        let instance = self.instance;
        if rest == 0 {
            return Ok(JoinResult::from_relation(instance.relation(top)));
        }
        let sub = self.join_mask(rest)?;
        hash_join_step(sub, instance.relation(top))
    }

    /// Materialises `mask` (and every missing prefix of its decomposition
    /// chain) in the memo table.
    fn ensure(&mut self, mask: u32) -> Result<()> {
        // Walk down the chain mask → mask \ {top bit} → … until we hit a
        // cached prefix (or a singleton), then build back up.
        let mut missing: Vec<u32> = Vec::new();
        let mut cur = mask;
        while cur != 0 && !self.memo.contains_key(&cur) {
            missing.push(cur);
            cur &= !(1u32 << (31 - cur.leading_zeros()));
        }
        for &step in missing.iter().rev() {
            let top = (31 - step.leading_zeros()) as usize;
            let rest = step & !(1u32 << top);
            let result = if rest == 0 {
                JoinResult::from_relation(self.instance.relation(top))
            } else {
                let sub = self.memo.get(&rest).expect("prefix built first");
                hash_join_step(sub, self.instance.relation(top))?
            };
            self.memo.insert(step, result);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::join::join_subset;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn star_instance(m: usize) -> (JoinQuery, Instance) {
        let q = JoinQuery::star(m, 16).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..m {
            for hub in 0..4u64 {
                for petal in 0..3u64 {
                    inst.relation_mut(r)
                        .add(vec![hub, (petal + r as u64) % 16], 1 + (hub % 2))
                        .unwrap();
                }
            }
        }
        (q, inst)
    }

    #[test]
    fn cached_subjoins_match_direct_evaluation() {
        let (q, inst) = star_instance(4);
        let mut cache = SubJoinCache::new(&q, &inst).unwrap();
        for mask in 1u32..(1 << 4) {
            let rels: Vec<usize> = (0..4).filter(|i| mask & (1 << i) != 0).collect();
            let direct = join_subset(&q, &inst, &rels).unwrap();
            let cached = cache.join_rels(&rels).unwrap();
            assert_eq!(cached.attrs(), direct.attrs());
            assert_eq!(cached.total(), direct.total());
            assert_eq!(cached.distinct_count(), direct.distinct_count());
        }
        // Every non-empty subset is memoised exactly once.
        assert_eq!(cache.cached_count(), (1 << 4) - 1);
    }

    #[test]
    fn enumeration_reuses_prefixes() {
        let (q, inst) = star_instance(3);
        let mut cache = SubJoinCache::new(&q, &inst).unwrap();
        cache.join_rels(&[0, 1, 2]).unwrap();
        // The chain {0} → {0,1} → {0,1,2} is materialised by one call.
        assert_eq!(cache.cached_count(), 3);
        // Asking for the prefix again computes nothing new.
        cache.join_rels(&[0, 1]).unwrap();
        assert_eq!(cache.cached_count(), 3);
    }

    #[test]
    fn rejects_invalid_masks_and_subsets() {
        let (q, inst) = star_instance(2);
        let mut cache = SubJoinCache::new(&q, &inst).unwrap();
        assert!(cache.join_rels(&[]).is_err());
        assert!(cache.join_rels(&[5]).is_err());
        assert!(cache.join_mask(0).is_err());
        assert!(cache.join_mask(1 << 3).is_err());
    }

    #[test]
    fn mismatched_instance_rejected() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 1)]).unwrap();
        let inst = Instance::new(vec![r1]);
        assert!(SubJoinCache::new(&q, &inst).is_err());
    }
}
