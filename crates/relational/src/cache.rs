//! Shared sub-join caching for relation-subset enumerations.
//!
//! Residual sensitivity (Definition 3.6) and the degree statistics of
//! Definition 4.7 evaluate sub-joins for *many* subsets `E ⊆ [m]` of the same
//! instance — the residual computation touches every proper subset, `2^m` of
//! them.  Recomputing each sub-join from the base relations repeats almost
//! all of the work: the join of `{0, 1, 2}` contains the join of `{0, 1}` as
//! an intermediate.
//!
//! [`SubJoinCache`] memoises sub-join results keyed by the subset's bitmask.
//! A subset's result is computed with **one** binary hash-join step from the
//! cached result of the subset minus one relation, so the whole `2^m`
//! enumeration performs exactly one join step per *distinct* non-singleton
//! subset instead of up to `m - 1` steps per subset — and each shared
//! parent is computed once, ever.
//!
//! **Which** relation a subset peels off is governed by a
//! [`JoinPlan`]: bare caches ([`SubJoinCache::new`],
//! [`ShardedSubJoinCache::new`]) default to the historical fixed-prefix
//! chain (always drop the highest relation index), while the `with_plan`
//! constructors accept the cost-based decomposition DAG the planner builds
//! from per-relation statistics — dropping the relation whose removal
//! leaves the smallest estimated intermediate, so lazy walks route around
//! cross-product parents and the resident intermediates shrink (see
//! [`crate::plan`]).  [`crate::ExecContext`] builds the plan once per
//! instance fingerprint and hands the same `Arc` to every checkout, so all
//! consumers — warm or cold, sequential or parallel — decompose
//! identically.  Decomposition never changes values: a sub-join is the same
//! weighted tuple set under every plan, and the lattice is only ever read
//! through order-free aggregates or sorted emits, so outputs stay
//! byte-identical to the fixed-prefix path.
//!
//! The cache borrows the query and instance immutably; drop it before
//! mutating the instance.  `SubJoinCache` is **strictly sequential**: its
//! join steps pin `Parallelism::SEQUENTIAL`, so callers that request the
//! sequential path get it even on multicore machines where the engine's
//! defaults resolve parallel.
//!
//! [`ShardedSubJoinCache`] is the concurrency-safe sibling used by the
//! parallel execution layer ([`crate::exec`]): the memo table is split into
//! mutex-guarded shards by the mask's low bits and values are `Arc`-shared,
//! so the worker pool populates independent subsets concurrently (level by
//! level over the subset lattice) while producing exactly the values the
//! sequential cache would.
//!
//! **Memory trade-off:** every materialised sub-join stays resident until
//! the cache is dropped, so a full `2^m` enumeration holds all `2^m - 1`
//! results at once where the uncached path held one at a time.  `m` is a
//! small constant in the paper's data-complexity setting, but on instances
//! with very heavy sub-joins callers can bound the footprint by splitting
//! the enumeration across several shorter-lived caches (an eviction policy
//! is tracked as a ROADMAP follow-on).

use std::sync::{Arc, Mutex};

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::exec::{self, Parallelism};
use crate::hash::FxHashMap;
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::join::{hash_join_step_agg, hash_join_step_with, AggSummary, JoinResult};
use crate::plan::{AggMode, JoinPlan, PlanConfig, ReplanStats, SharedJoinPlan};
use crate::Result;

/// Memoised sub-join results over one `(query, instance)` pair, keyed by the
/// relation-subset bitmask.
#[derive(Debug)]
pub struct SubJoinCache<'a> {
    query: &'a JoinQuery,
    instance: &'a Instance,
    plan: SharedJoinPlan,
    memo: FxHashMap<u32, JoinResult>,
}

impl<'a> SubJoinCache<'a> {
    /// Creates an empty cache for the given query and instance, decomposing
    /// subsets along the historical fixed-prefix chain.
    pub fn new(query: &'a JoinQuery, instance: &'a Instance) -> Result<Self> {
        let plan = Arc::new(JoinPlan::fixed_prefix(query.num_relations()));
        Self::with_plan(query, instance, plan)
    }

    /// Creates an empty cache decomposing subsets along an explicit
    /// [`JoinPlan`] (usually the cost-based plan of
    /// [`crate::plan::JoinPlan::cost_based`]).
    pub fn with_plan(
        query: &'a JoinQuery,
        instance: &'a Instance,
        plan: SharedJoinPlan,
    ) -> Result<Self> {
        if instance.num_relations() != query.num_relations() {
            return Err(RelationalError::RelationCountMismatch {
                expected: query.num_relations(),
                got: instance.num_relations(),
            });
        }
        // Strictly below 32 so that `mask >> m` in `join_mask` never shifts
        // by the full bit width.
        if query.num_relations() >= 32 {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "SubJoinCache supports at most 31 relations, got {}",
                query.num_relations()
            )));
        }
        plan.check_relations(query.num_relations())?;
        Ok(SubJoinCache {
            query,
            instance,
            plan,
            memo: FxHashMap::default(),
        })
    }

    /// The query this cache evaluates sub-joins of.
    pub fn query(&self) -> &JoinQuery {
        self.query
    }

    /// The instance this cache evaluates sub-joins over.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// The decomposition plan driving this cache.
    pub fn plan(&self) -> &SharedJoinPlan {
        &self.plan
    }

    /// Number of sub-join results currently memoised.
    pub fn cached_count(&self) -> usize {
        self.memo.len()
    }

    /// Total distinct tuples across all memoised sub-join results — the
    /// resident intermediate footprint the planner works to shrink.
    pub fn cached_tuples(&self) -> usize {
        self.memo.values().map(|r| r.distinct_count()).sum()
    }

    /// Converts a sorted relation-index subset to its bitmask.
    pub fn mask_of(&self, rels: &[usize]) -> Result<u32> {
        self.query.check_subset(rels)?;
        Ok(rels.iter().fold(0u32, |m, &i| m | (1u32 << i)))
    }

    /// The memoised sub-join of the subset given as a sorted index list.
    /// Computes (and caches) any missing prefixes on the way.
    pub fn join_rels(&mut self, rels: &[usize]) -> Result<&JoinResult> {
        let mask = self.mask_of(rels)?;
        if mask == 0 {
            return Err(RelationalError::InvalidRelationSubset(
                "cannot join an empty set of relations; the empty join is handled by callers"
                    .to_string(),
            ));
        }
        self.join_mask(mask)
    }

    /// The memoised sub-join of the subset given as a bitmask (bit `i` set ⇔
    /// relation `i` participates).  `mask` must be non-zero and within range.
    pub fn join_mask(&mut self, mask: u32) -> Result<&JoinResult> {
        let m = self.query.num_relations();
        if mask == 0 || (mask >> m) != 0 {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "invalid sub-join bitmask {mask:#b} for m = {m}"
            )));
        }
        self.ensure(mask)?;
        Ok(self.memo.get(&mask).expect("ensured above"))
    }

    /// Computes the sub-join of `rels` reusing (and extending) cached
    /// parents, but **without memoising the final step**: the returned
    /// result is owned by the caller and freed when dropped.
    ///
    /// Use this when the top-level results are large and consumed once —
    /// e.g. local sensitivity's `m` size-`(m-1)` sub-joins, which share only
    /// their smaller parents.  Memoising them would pin `m` full-size join
    /// results in memory for no reuse.
    pub fn join_rels_transient(&mut self, rels: &[usize]) -> Result<JoinResult> {
        let mask = self.mask_of(rels)?;
        if mask == 0 {
            return Err(RelationalError::InvalidRelationSubset(
                "cannot join an empty set of relations; the empty join is handled by callers"
                    .to_string(),
            ));
        }
        let pivot = self.plan.pivot(mask);
        let rest = mask & !(1u32 << pivot);
        // Copy the instance reference out so the shared borrow of the memo
        // entry below doesn't conflict with it.
        let instance = self.instance;
        if rest == 0 {
            return Ok(JoinResult::from_relation(instance.relation(pivot)));
        }
        let sub = self.join_mask(rest)?;
        // Strictly sequential: this cache is the single-threaded path (the
        // sharded cache is the parallel one), so it must not inherit the
        // default parallelism of the plain `hash_join_step`.
        hash_join_step_with(sub, instance.relation(pivot), Parallelism::SEQUENTIAL)
    }

    /// Materialises `mask` (and every missing parent of its decomposition
    /// chain) in the memo table.
    fn ensure(&mut self, mask: u32) -> Result<()> {
        // Walk down the plan's chain mask → parent(mask) → … until we hit a
        // cached parent (or a singleton), then build back up.
        let mut missing: Vec<u32> = Vec::new();
        let mut cur = mask;
        while cur != 0 && !self.memo.contains_key(&cur) {
            missing.push(cur);
            cur = self.plan.parent(cur);
        }
        for &step in missing.iter().rev() {
            let pivot = self.plan.pivot(step);
            let rest = step & !(1u32 << pivot);
            let result = if rest == 0 {
                JoinResult::from_relation(self.instance.relation(pivot))
            } else {
                let sub = self.memo.get(&rest).expect("parent built first");
                hash_join_step_with(sub, self.instance.relation(pivot), Parallelism::SEQUENTIAL)?
            };
            self.memo.insert(step, result);
        }
        Ok(())
    }
}

/// Number of memo shards in a [`ShardedSubJoinCache`] (a power of two; masks
/// map to shards by their low bits, so sibling subsets land apart).
const SHARD_COUNT: usize = 16;

/// One mutex-guarded memo shard of a [`ShardedSubJoinCache`].
type MemoShard = Mutex<FxHashMap<u32, Arc<JoinResult>>>;

/// A concurrency-safe variant of [`SubJoinCache`]: the memo table is split
/// into `SHARD_COUNT` mutex-guarded shards keyed by the subset bitmask's
/// low bits, and results are stored behind `Arc` so readers hold no lock
/// while consuming a sub-join.
///
/// Independent subsets therefore populate **concurrently**: the parallel
/// subset enumerations of residual sensitivity walk the lattice level by
/// level ([`ShardedSubJoinCache::populate_proper_subsets`]), with every mask
/// of a level computed by the worker pool from the already-complete previous
/// level, and workers inserting into (mostly) distinct shards.  Values are
/// identical to the sequential cache's — a sub-join is the same weighted
/// tuple set under every decomposition — so parallel and sequential
/// consumers observe the same results.
///
/// Locks are held only for map lookups/inserts, never across a join step.
/// If two workers race to materialise the same parent through
/// [`ShardedSubJoinCache::join_mask`], both compute it and the insertions
/// are idempotent (the results are equal); determinism is unaffected.
#[derive(Debug)]
pub struct ShardedSubJoinCache<'a> {
    query: &'a JoinQuery,
    instance: &'a Instance,
    plan: SharedJoinPlan,
    shards: Box<[MemoShard]>,
    /// Fingerprint of the `(query, instance)` pair, filled in by
    /// [`crate::ExecContext`] on checkout so check-in does not have to
    /// re-hash the whole instance.
    pub(crate) fingerprint: Option<u64>,
    /// Runtime-feedback diagnostics accumulated by the adaptive walks of
    /// this checkout ([`Self::populate_proper_subsets_adaptive`],
    /// [`Self::join_mask_adaptive`]); `None` until one has run.  Carried
    /// back to the context slot on check-in.
    pub(crate) replan: Option<ReplanStats>,
    /// Count-only aggregate summaries, an **overlay** over the materialised
    /// memo: none of the materialised lookups ([`Self::get`],
    /// [`Self::join_mask`], delta/stream maintenance) ever see it, so a
    /// mask's evaluation mode affects cost only, never values.  Keyed by
    /// mask; a stored summary is only valid for reads over its recorded
    /// `group_by` list (checked on every hit).
    agg: Mutex<FxHashMap<u32, Arc<AggSummary>>>,
    /// The materialize-vs-aggregate policy of this checkout (see
    /// [`AggMode`]).  Set from the context's [`PlanConfig`] on checkout;
    /// standalone caches default to the environment's setting.
    pub(crate) agg_mode: AggMode,
}

impl<'a> ShardedSubJoinCache<'a> {
    /// Creates an empty sharded cache for the given query and instance,
    /// decomposing subsets along the historical fixed-prefix chain.
    pub fn new(query: &'a JoinQuery, instance: &'a Instance) -> Result<Self> {
        let plan = Arc::new(JoinPlan::fixed_prefix(query.num_relations()));
        Self::with_plan(query, instance, plan)
    }

    /// Creates an empty sharded cache decomposing subsets along an explicit
    /// [`JoinPlan`].
    pub fn with_plan(
        query: &'a JoinQuery,
        instance: &'a Instance,
        plan: SharedJoinPlan,
    ) -> Result<Self> {
        if instance.num_relations() != query.num_relations() {
            return Err(RelationalError::RelationCountMismatch {
                expected: query.num_relations(),
                got: instance.num_relations(),
            });
        }
        if query.num_relations() >= 32 {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "ShardedSubJoinCache supports at most 31 relations, got {}",
                query.num_relations()
            )));
        }
        plan.check_relations(query.num_relations())?;
        let shards = (0..SHARD_COUNT)
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ok(ShardedSubJoinCache {
            query,
            instance,
            plan,
            shards,
            fingerprint: None,
            replan: None,
            agg: Mutex::new(FxHashMap::default()),
            agg_mode: PlanConfig::default().agg_mode,
        })
    }

    /// Creates a sharded cache pre-seeded with previously materialised
    /// sub-join results (the counterpart of
    /// [`ShardedSubJoinCache::into_memo`]), decomposing along `plan`.
    ///
    /// This is the warm-start path of the persistent per-context cache
    /// ([`crate::ExecContext::subjoin_cache`]): a long-lived execution
    /// context snapshots the memo between calls and re-seeds the next cache
    /// with it — together with the slot's shared plan, so every checkout
    /// decomposes identically — and repeated enumerations over the same
    /// `(query, instance)` pair skip every already-computed sub-join.
    /// Entries whose mask is out of range for `query` are silently dropped
    /// (they cannot be reached by any valid lookup).
    pub fn with_memo_and_plan(
        query: &'a JoinQuery,
        instance: &'a Instance,
        memo: FxHashMap<u32, Arc<JoinResult>>,
        plan: SharedJoinPlan,
    ) -> Result<Self> {
        let cache = Self::with_plan(query, instance, plan)?;
        let m = query.num_relations();
        for (mask, result) in memo {
            if mask != 0 && (mask >> m) == 0 {
                cache.insert(mask, result);
            }
        }
        Ok(cache)
    }

    /// [`ShardedSubJoinCache::with_memo_and_plan`] with the fixed-prefix
    /// decomposition.
    pub fn with_memo(
        query: &'a JoinQuery,
        instance: &'a Instance,
        memo: FxHashMap<u32, Arc<JoinResult>>,
    ) -> Result<Self> {
        let plan = Arc::new(JoinPlan::fixed_prefix(query.num_relations()));
        Self::with_memo_and_plan(query, instance, memo, plan)
    }

    /// Consumes the cache and returns its materialised sub-join results as
    /// one flat memo map (see [`ShardedSubJoinCache::with_memo`]).
    pub fn into_memo(self) -> FxHashMap<u32, Arc<JoinResult>> {
        let mut out = FxHashMap::default();
        for shard in self.shards.into_vec() {
            out.extend(shard.into_inner().expect("cache shard poisoned"));
        }
        out
    }

    /// The query this cache evaluates sub-joins of.
    pub fn query(&self) -> &JoinQuery {
        self.query
    }

    /// The instance this cache evaluates sub-joins over.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    fn shard(&self, mask: u32) -> &MemoShard {
        &self.shards[(mask as usize) & (SHARD_COUNT - 1)]
    }

    /// The memoised sub-join of `mask`, if already materialised.
    pub fn get(&self, mask: u32) -> Option<Arc<JoinResult>> {
        self.shard(mask)
            .lock()
            .expect("cache shard poisoned")
            .get(&mask)
            .cloned()
    }

    fn insert(&self, mask: u32, result: Arc<JoinResult>) {
        self.shard(mask)
            .lock()
            .expect("cache shard poisoned")
            .entry(mask)
            .or_insert(result);
    }

    /// The decomposition plan driving this cache.
    pub fn plan(&self) -> &SharedJoinPlan {
        &self.plan
    }

    /// Number of sub-join results currently memoised across all shards.
    pub fn cached_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Total distinct tuples across all memoised sub-join results — the
    /// resident intermediate footprint the planner works to shrink.
    pub fn cached_tuples(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .values()
                    .map(|r| r.distinct_count())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Converts a sorted relation-index subset to its bitmask.
    pub fn mask_of(&self, rels: &[usize]) -> Result<u32> {
        self.query.check_subset(rels)?;
        Ok(rels.iter().fold(0u32, |m, &i| m | (1u32 << i)))
    }

    fn check_mask(&self, mask: u32) -> Result<()> {
        let m = self.query.num_relations();
        if mask == 0 || (mask >> m) != 0 {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "invalid sub-join bitmask {mask:#b} for m = {m}"
            )));
        }
        Ok(())
    }

    /// Computes `mask`'s sub-join with one hash-join step from the cached
    /// result of `mask` minus its plan pivot (which must already be
    /// materialised — the level-by-level populate guarantees it).
    fn compute_from_parent(&self, mask: u32, par: Parallelism) -> Result<JoinResult> {
        let pivot = self.plan.pivot(mask);
        let rest = mask & !(1u32 << pivot);
        if rest == 0 {
            Ok(JoinResult::from_relation(self.instance.relation(pivot)))
        } else {
            let sub = self.get(rest).expect("parent materialised before use");
            hash_join_step_with(&sub, self.instance.relation(pivot), par)
        }
    }

    /// The memoised sub-join of the subset given as a bitmask, materialising
    /// any missing parents of its decomposition chain on the way.  Safe to
    /// call from pool workers concurrently.
    pub fn join_mask(&self, mask: u32, par: Parallelism) -> Result<Arc<JoinResult>> {
        self.check_mask(mask)?;
        let mut missing: Vec<u32> = Vec::new();
        let mut cur = mask;
        while cur != 0 && self.get(cur).is_none() {
            missing.push(cur);
            cur = self.plan.parent(cur);
        }
        for &step in missing.iter().rev() {
            let result = self.compute_from_parent(step, par)?;
            self.insert(step, Arc::new(result));
        }
        Ok(self.get(mask).expect("ensured above"))
    }

    /// Computes the sub-join of `mask` reusing cached parents but without
    /// memoising the final step (the sharded counterpart of
    /// [`SubJoinCache::join_rels_transient`]).
    pub fn join_mask_transient(&self, mask: u32, par: Parallelism) -> Result<JoinResult> {
        self.check_mask(mask)?;
        let pivot = self.plan.pivot(mask);
        let rest = mask & !(1u32 << pivot);
        if rest == 0 {
            return Ok(JoinResult::from_relation(self.instance.relation(pivot)));
        }
        let sub = self.join_mask(rest, par)?;
        hash_join_step_with(&sub, self.instance.relation(pivot), par)
    }

    /// Materialises every non-empty **proper** subset of `[m]` (all masks
    /// except the full one — exactly the sub-joins residual sensitivity's
    /// boundary values need), walking the subset lattice level by level
    /// through the worker pool.
    ///
    /// Level `k` masks depend only on level `k - 1` parents (every plan
    /// peels exactly one relation per step), so all masks of a level are
    /// computed concurrently; when a level has a single mask the parallelism
    /// is spent inside the join step's probe loop instead.
    ///
    /// Masks within a level are claimed by **work stealing** (one shared
    /// atomic counter per level): sub-join sizes vary wildly across masks on
    /// skewed instances, so a worker finishing a light mask immediately
    /// claims the next instead of idling behind a fixed stride.  Values are
    /// inserted keyed by mask, so the memo contents — and every downstream
    /// read — are independent of which worker computed what.
    pub fn populate_proper_subsets(&self, par: Parallelism) -> Result<()> {
        self.populate_proper_subsets_sched(par, exec::Schedule::Stealing)
            .map(|_| ())
    }

    /// [`Self::populate_proper_subsets`] with an explicit schedule, returning
    /// the per-worker claim counts aggregated across all lattice levels.
    ///
    /// The returned [`exec::SchedulerStats`] sums each level's claims
    /// worker-by-worker (index 0 is always the calling thread), which is how
    /// the bench harness demonstrates rebalancing: under
    /// [`exec::Schedule::Stealing`] the max/min spread tracks actual mask
    /// cost, while [`exec::Schedule::Strided`] fixes the split by arithmetic
    /// regardless of skew.  Single-mask levels run inline on the caller and
    /// are counted as one claim by worker 0.
    pub fn populate_proper_subsets_sched(
        &self,
        par: Parallelism,
        sched: exec::Schedule,
    ) -> Result<exec::SchedulerStats> {
        let m = self.query.num_relations() as u32;
        let full = (1u32 << m) - 1;
        let mut stats = exec::SchedulerStats::default();
        for level in 1..m.max(1) {
            let masks: Vec<u32> = (1..full)
                .filter(|mask| mask.count_ones() == level)
                .collect();
            self.populate_level(par, sched, &masks, &mut stats)?;
        }
        Ok(stats)
    }

    /// Materialises one lattice level's masks through the worker pool (the
    /// shared body of the static and adaptive populates).  Single-mask
    /// levels run inline with the full parallelism spent inside the join
    /// step instead.
    fn populate_level(
        &self,
        par: Parallelism,
        sched: exec::Schedule,
        masks: &[u32],
        stats: &mut exec::SchedulerStats,
    ) -> Result<()> {
        if masks.len() <= 1 {
            for &mask in masks {
                if self.get(mask).is_none() {
                    let result = self.compute_from_parent(mask, par)?;
                    self.insert(mask, Arc::new(result));
                }
                stats.absorb(&exec::SchedulerStats::from_claims(vec![1]));
            }
        } else {
            let (outcomes, level_stats) =
                exec::par_map_sched_stats(par, sched, masks.len(), |i| -> Result<()> {
                    let mask = masks[i];
                    if self.get(mask).is_none() {
                        let result = self.compute_from_parent(mask, Parallelism::SEQUENTIAL)?;
                        self.insert(mask, Arc::new(result));
                    }
                    Ok(())
                });
            for outcome in outcomes {
                outcome?;
            }
            stats.absorb(&level_stats);
        }
        Ok(())
    }

    /// Runtime-feedback diagnostics of this checkout's adaptive walks, if
    /// any have run (see [`ReplanStats`]).
    pub fn replan_stats(&self) -> Option<&ReplanStats> {
        self.replan.as_ref()
    }

    /// Measured cardinalities of every materialised mask — the exact
    /// anchors a re-plan prices from.
    fn materialised_anchors(&self) -> FxHashMap<u32, f64> {
        let mut anchors = FxHashMap::default();
        for shard in self.shards.iter() {
            for (&mask, result) in shard.lock().expect("cache shard poisoned").iter() {
                anchors.insert(mask, result.distinct_count() as f64);
            }
        }
        anchors
    }

    /// Records `mask`'s measured cardinality against the current plan's
    /// estimate; returns whether the error factor breaches the configured
    /// re-plan ratio.  Cardinalities below one tuple compare as one, so
    /// near-empty results never divide by zero or trigger on noise.
    fn measure(
        &self,
        mask: u32,
        actual: usize,
        config: &PlanConfig,
        replan: &mut ReplanStats,
    ) -> bool {
        let Some(est) = self.plan.estimated_rows(mask) else {
            return false;
        };
        let est = est.max(1.0);
        let actual = (actual as f64).max(1.0);
        let err = (actual / est).max(est / actual);
        replan.record_error(err);
        if err > config.replan_ratio {
            replan.triggers += 1;
            true
        } else {
            false
        }
    }

    /// Re-plans the not-yet-materialised remainder of the lattice from the
    /// measured anchors and swaps the cache onto the new decomposition.
    /// Values are plan-invariant, so the swap can never change results —
    /// only which parents the remaining masks are built from.
    fn replan_now(&mut self, replan: &mut ReplanStats) {
        let anchors = self.materialised_anchors();
        if let Some(new_plan) = self.plan.replanned(self.query, &anchors) {
            let full = (1u32 << self.query.num_relations()) - 1;
            let changed = (1..=full)
                .filter(|mask| {
                    !anchors.contains_key(mask) && new_plan.pivot(*mask) != self.plan.pivot(*mask)
                })
                .count();
            replan.replans += 1;
            replan.pivots_changed += changed;
            self.plan = Arc::new(new_plan);
        }
    }

    /// [`Self::populate_proper_subsets_sched`] with the runtime feedback
    /// loop closed: after each lattice level is materialised, every mask's
    /// actual cardinality is compared against its estimate, and when the
    /// error factor `max(actual/est, est/actual)` of any mask exceeds
    /// [`PlanConfig::replan_ratio`] the remaining levels are re-planned
    /// with the measured cardinalities as exact anchors
    /// ([`JoinPlan::replanned`]).
    ///
    /// The measurement happens at a **level barrier** — all masks of a
    /// level are complete before any error is read, and both actuals and
    /// estimates are thread-count-invariant — so the re-plan decisions, the
    /// final decomposition, and (since values are plan-invariant) every
    /// result are byte-identical at every thread count and schedule.
    pub fn populate_proper_subsets_adaptive(
        &mut self,
        par: Parallelism,
        sched: exec::Schedule,
        config: &PlanConfig,
    ) -> Result<(exec::SchedulerStats, ReplanStats)> {
        let m = self.query.num_relations() as u32;
        let full = (1u32 << m) - 1;
        let mut stats = exec::SchedulerStats::default();
        let mut replan = self.replan.take().unwrap_or_default();
        for level in 1..m.max(1) {
            let masks: Vec<u32> = (1..full)
                .filter(|mask| mask.count_ones() == level)
                .collect();
            self.populate_level(par, sched, &masks, &mut stats)?;
            if !self.plan.is_cost_based() {
                continue;
            }
            let mut breach = false;
            for &mask in &masks {
                if let Some(result) = self.get(mask) {
                    breach |= self.measure(mask, result.distinct_count(), config, &mut replan);
                }
            }
            if breach {
                self.replan_now(&mut replan);
            }
        }
        let out = replan.clone();
        self.replan = Some(replan);
        Ok((stats, out))
    }

    /// [`Self::join_mask`] with the runtime feedback loop closed on the
    /// lazy chain walk: each chain step's actual cardinality is measured as
    /// soon as it materialises, and a breach of
    /// [`PlanConfig::replan_ratio`] re-plans the not-yet-walked remainder
    /// of the chain — so one blown estimate re-routes every step still to
    /// come, instead of compounding through the rest of the walk.  This is
    /// where adaptive planning shrinks resident intermediates: on
    /// correlated instances the static chain commits to a trap parent for
    /// every target, while the adaptive walk pays for the trap once and
    /// routes subsequent targets around it.
    ///
    /// Values are identical to [`Self::join_mask`] under any plan; only the
    /// set of memoised intermediates differs.
    pub fn join_mask_adaptive(
        &mut self,
        mask: u32,
        par: Parallelism,
        config: &PlanConfig,
    ) -> Result<Arc<JoinResult>> {
        self.check_mask(mask)?;
        let mut replan = self.replan.take().unwrap_or_default();
        let result = loop {
            if let Some(hit) = self.get(mask) {
                break hit;
            }
            self.advance_chain(mask, par, config, &mut replan)?;
        };
        self.replan = Some(replan);
        Ok(result)
    }

    /// Materialises the **deepest missing step** of `mask`'s current-plan
    /// decomposition chain — one join step whose parent is already
    /// materialised (or empty) — then measures it and re-plans on a breach.
    /// One call, one new mask: callers re-read the (possibly re-routed)
    /// plan between steps, which is what lets a mid-chain re-plan steer the
    /// walk away from a stale route before it is paid for.
    fn advance_chain(
        &mut self,
        mask: u32,
        par: Parallelism,
        config: &PlanConfig,
        replan: &mut ReplanStats,
    ) -> Result<()> {
        let mut step = mask;
        loop {
            let parent = self.plan.parent(step);
            if parent == 0 || self.get(parent).is_some() {
                break;
            }
            step = parent;
        }
        let computed = self.compute_from_parent(step, par)?;
        let actual = computed.distinct_count();
        self.insert(step, Arc::new(computed));
        if self.measure(step, actual, config, replan) {
            self.replan_now(replan);
        }
        Ok(())
    }

    /// [`Self::join_mask_transient`] with the adaptive chain walk of
    /// [`Self::join_mask_adaptive`]: the chain below `mask` materialises
    /// (and measures, and possibly re-plans) adaptively, while the final
    /// step stays un-memoised and owned by the caller — the footprint shape
    /// local sensitivity wants for its `m` full-size targets.
    pub fn join_mask_transient_adaptive(
        &mut self,
        mask: u32,
        par: Parallelism,
        config: &PlanConfig,
    ) -> Result<JoinResult> {
        self.check_mask(mask)?;
        let mut replan = self.replan.take().unwrap_or_default();
        let out = loop {
            // Pivot and rest are re-read from the *current* plan every
            // step: a re-plan triggered anywhere below can re-route `mask`
            // itself, and the walk must follow the new route before the
            // stale rest mask is materialised (each iteration either
            // finishes or materialises one new mask, so this terminates).
            let pivot = self.plan.pivot(mask);
            let rest = mask & !(1u32 << pivot);
            if rest == 0 {
                break Ok(JoinResult::from_relation(self.instance.relation(pivot)));
            }
            if let Some(sub) = self.get(rest) {
                break hash_join_step_with(&sub, self.instance.relation(pivot), par);
            }
            if let Err(e) = self.advance_chain(rest, par, config, &mut replan) {
                break Err(e);
            }
        };
        self.replan = Some(replan);
        out
    }

    // ---- Aggregate-pushdown (count-only) evaluation --------------------
    //
    // The sensitivity layer reads most lattice masks only through
    // per-boundary-key maximum group weights and join sizes.  The methods
    // below serve those reads from an `AggSummary` computed by the
    // non-materializing fold (`hash_join_step_agg`) whenever the mask is
    // *terminal* — nobody's chain parent under the current plan — and from
    // the materialised lattice otherwise.  Both paths produce identical
    // numbers (the fold replicates the materializing oracle's grouping and
    // saturation exactly), so the per-mask decision is invisible in every
    // output.

    /// The cached count-only summary of `mask` for this exact `group_by`
    /// list, if present.  A summary recorded for a different group list is
    /// not a hit — it answers a different boundary query.
    fn agg_get(&self, mask: u32, group_by: &[AttrId]) -> Option<Arc<AggSummary>> {
        self.agg
            .lock()
            .expect("agg overlay poisoned")
            .get(&mask)
            .filter(|s| s.group_by == group_by)
            .cloned()
    }

    fn agg_insert(&self, mask: u32, summary: Arc<AggSummary>) {
        // Unlike the materialised memo this replaces: a later read over a
        // different group list supersedes the stored summary (values for
        // the same list are deterministic, so replacement is safe).
        self.agg
            .lock()
            .expect("agg overlay poisoned")
            .insert(mask, summary);
    }

    /// Whether an aggregate read over `mask` should go through the
    /// materialised lattice instead of the count-only fold.
    fn reads_materialized(&self, mask: u32) -> bool {
        let full = (1u32 << self.query.num_relations()) - 1;
        match self.agg_mode {
            AggMode::Never => true,
            // Stress mode: force the fold on every proper mask, even when a
            // materialised entry is warm.
            AggMode::Always => mask == full,
            // Masks the lattice needs materialised anyway — the full join
            // and every chain parent — plus already-warm entries, read the
            // tuples directly.
            AggMode::Auto => {
                mask == full || self.plan.is_chain_parent(mask) || self.get(mask).is_some()
            }
        }
    }

    /// Computes `mask`'s count-only summary with one aggregate fold from
    /// its plan parent.  The parent is materialised through the **lazy
    /// chain walk**, never assumed present: a mid-populate re-plan can
    /// re-route a chain through a mask the demanded populate skipped, and
    /// the walk builds such ancestors instead of panicking.
    fn compute_agg(&self, mask: u32, group_by: &[AttrId], par: Parallelism) -> Result<AggSummary> {
        let pivot = self.plan.pivot(mask);
        let rest = mask & !(1u32 << pivot);
        if rest == 0 {
            AggSummary::from_join_result(
                &JoinResult::from_relation(self.instance.relation(pivot)),
                group_by,
            )
        } else {
            let sub = self.join_mask(rest, par)?;
            hash_join_step_agg(&sub, self.instance.relation(pivot), group_by, par)
        }
    }

    /// The maximum group weight of `mask`'s sub-join over `group_by` (the
    /// boundary query; an empty list yields the join size).  Serves the
    /// read count-only where the [`AggMode`] policy allows, memoising the
    /// summary in the overlay; otherwise reads the materialised lattice via
    /// [`Self::join_mask`].  Values are identical either way.
    pub fn max_group_weight(
        &self,
        mask: u32,
        group_by: &[AttrId],
        par: Parallelism,
    ) -> Result<u128> {
        self.check_mask(mask)?;
        if let Some(hit) = self.agg_get(mask, group_by) {
            return Ok(hit.max_group_weight);
        }
        if self.reads_materialized(mask) {
            return self.join_mask(mask, par)?.max_group_weight(group_by);
        }
        let summary = Arc::new(self.compute_agg(mask, group_by, par)?);
        let max = summary.max_group_weight;
        self.agg_insert(mask, summary);
        Ok(max)
    }

    /// [`Self::max_group_weight`] without memoising anything for `mask`
    /// itself (parents materialise as usual) — the footprint shape local
    /// sensitivity wants for its `m` full-size targets.
    pub fn max_group_weight_transient(
        &self,
        mask: u32,
        group_by: &[AttrId],
        par: Parallelism,
    ) -> Result<u128> {
        self.check_mask(mask)?;
        if let Some(hit) = self.agg_get(mask, group_by) {
            return Ok(hit.max_group_weight);
        }
        if self.reads_materialized(mask) {
            return self
                .join_mask_transient(mask, par)?
                .max_group_weight(group_by);
        }
        Ok(self.compute_agg(mask, group_by, par)?.max_group_weight)
    }

    /// [`Self::max_group_weight`] with the runtime feedback loop closed:
    /// the count-only fold measures the summary's recorded distinct count
    /// against the planner estimate (exactly what the materializing path
    /// would have measured — the fold counts the same match pairs), and a
    /// breach re-plans the not-yet-built remainder.  A re-plan below can
    /// re-route `mask` itself; values are plan-invariant, so the fold over
    /// the already-chosen pivot stays correct — only later masks take the
    /// new route.
    pub fn max_group_weight_adaptive(
        &mut self,
        mask: u32,
        group_by: &[AttrId],
        par: Parallelism,
        config: &PlanConfig,
    ) -> Result<u128> {
        self.check_mask(mask)?;
        if let Some(hit) = self.agg_get(mask, group_by) {
            return Ok(hit.max_group_weight);
        }
        if self.reads_materialized(mask) {
            return self
                .join_mask_adaptive(mask, par, config)?
                .max_group_weight(group_by);
        }
        let summary = Arc::new(self.compute_agg_adaptive(mask, group_by, par, config)?);
        let mut replan = self.replan.take().unwrap_or_default();
        if self.measure(mask, summary.distinct_count, config, &mut replan) {
            self.replan_now(&mut replan);
        }
        self.replan = Some(replan);
        let max = summary.max_group_weight;
        self.agg_insert(mask, summary);
        Ok(max)
    }

    /// [`Self::max_group_weight_transient`] with the adaptive chain walk
    /// below (parents materialise, measure and possibly re-plan) and the
    /// final fold measured too; nothing is memoised for `mask` itself.
    pub fn max_group_weight_transient_adaptive(
        &mut self,
        mask: u32,
        group_by: &[AttrId],
        par: Parallelism,
        config: &PlanConfig,
    ) -> Result<u128> {
        self.check_mask(mask)?;
        if let Some(hit) = self.agg_get(mask, group_by) {
            return Ok(hit.max_group_weight);
        }
        if self.reads_materialized(mask) {
            return self
                .join_mask_transient_adaptive(mask, par, config)?
                .max_group_weight(group_by);
        }
        let summary = self.compute_agg_adaptive(mask, group_by, par, config)?;
        let mut replan = self.replan.take().unwrap_or_default();
        if self.measure(mask, summary.distinct_count, config, &mut replan) {
            self.replan_now(&mut replan);
        }
        self.replan = Some(replan);
        Ok(summary.max_group_weight)
    }

    /// [`Self::compute_agg`] with the parent chain walked adaptively.  The
    /// pivot is committed before the walk; a re-plan triggered below may
    /// re-route `mask`, but the fold over the committed pivot still yields
    /// `mask`'s sub-join aggregates (values are plan-invariant).
    fn compute_agg_adaptive(
        &mut self,
        mask: u32,
        group_by: &[AttrId],
        par: Parallelism,
        config: &PlanConfig,
    ) -> Result<AggSummary> {
        let pivot = self.plan.pivot(mask);
        let rest = mask & !(1u32 << pivot);
        if rest == 0 {
            return AggSummary::from_join_result(
                &JoinResult::from_relation(self.instance.relation(pivot)),
                group_by,
            );
        }
        let sub = self.join_mask_adaptive(rest, par, config)?;
        hash_join_step_agg(&sub, self.instance.relation(pivot), group_by, par)
    }

    /// [`Self::populate_proper_subsets_adaptive`] restricted to the masks
    /// the lattice actually *demands* as tuples: under
    /// [`AggMode::Auto`]/[`AggMode::Always`] only chain parents are
    /// materialised and terminal masks are left to the count-only reads;
    /// under [`AggMode::Never`] this is exactly the full adaptive populate.
    ///
    /// Each level's demand set is re-read from the **current** plan, so a
    /// mid-populate re-plan re-routes later levels' demand too, and masks
    /// are built through the lazy chain walk ([`Self::join_mask`]) rather
    /// than a parent-present assumption — a re-plan may demand a mask whose
    /// new parent was skipped at an earlier level, and the walk builds it.
    pub fn populate_demanded_adaptive(
        &mut self,
        par: Parallelism,
        sched: exec::Schedule,
        config: &PlanConfig,
    ) -> Result<(exec::SchedulerStats, ReplanStats)> {
        if self.agg_mode == AggMode::Never {
            return self.populate_proper_subsets_adaptive(par, sched, config);
        }
        let m = self.query.num_relations() as u32;
        let full = (1u32 << m) - 1;
        let mut stats = exec::SchedulerStats::default();
        let mut replan = self.replan.take().unwrap_or_default();
        for level in 1..m.max(1) {
            let masks: Vec<u32> = (1..full)
                .filter(|&mask| mask.count_ones() == level && self.plan.is_chain_parent(mask))
                .collect();
            if masks.len() <= 1 {
                for &mask in &masks {
                    self.join_mask(mask, par)?;
                    stats.absorb(&exec::SchedulerStats::from_claims(vec![1]));
                }
            } else {
                let (outcomes, level_stats) =
                    exec::par_map_sched_stats(par, sched, masks.len(), |i| {
                        self.join_mask(masks[i], Parallelism::SEQUENTIAL)
                            .map(|_| ())
                    });
                for outcome in outcomes {
                    outcome?;
                }
                stats.absorb(&level_stats);
            }
            if !self.plan.is_cost_based() {
                continue;
            }
            let mut breach = false;
            for &mask in &masks {
                if let Some(result) = self.get(mask) {
                    breach |= self.measure(mask, result.distinct_count(), config, &mut replan);
                }
            }
            if breach {
                self.replan_now(&mut replan);
            }
        }
        let out = replan.clone();
        self.replan = Some(replan);
        Ok((stats, out))
    }

    /// Snapshot of the count-only overlay (cheap `Arc` clones), taken by
    /// the execution context before check-in consumes the cache.
    pub fn agg_entries(&self) -> FxHashMap<u32, Arc<AggSummary>> {
        self.agg.lock().expect("agg overlay poisoned").clone()
    }

    /// Seeds the count-only overlay (the warm-checkout counterpart of
    /// [`Self::agg_entries`]).  Out-of-range masks are silently dropped.
    pub(crate) fn seed_agg(&self, entries: FxHashMap<u32, Arc<AggSummary>>) {
        let m = self.query.num_relations();
        let mut agg = self.agg.lock().expect("agg overlay poisoned");
        for (mask, summary) in entries {
            if mask != 0 && (mask >> m) == 0 {
                agg.insert(mask, summary);
            }
        }
    }

    /// Number of count-only summaries resident in the overlay.
    pub fn cached_agg_count(&self) -> usize {
        self.agg.lock().expect("agg overlay poisoned").len()
    }

    /// Approximate resident bytes across both entry kinds: flat tuple
    /// buffers for materialised entries, fixed-size summaries for
    /// aggregated ones.
    pub fn cached_bytes(&self) -> usize {
        let materialized: usize = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .values()
                    .map(|r| r.approx_bytes())
                    .sum::<usize>()
            })
            .sum();
        let aggregated: usize = self
            .agg
            .lock()
            .expect("agg overlay poisoned")
            .values()
            .map(|s| s.approx_bytes())
            .sum();
        materialized + aggregated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::join::join_subset;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn star_instance(m: usize) -> (JoinQuery, Instance) {
        let q = JoinQuery::star(m, 16).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..m {
            for hub in 0..4u64 {
                for petal in 0..3u64 {
                    inst.relation_mut(r)
                        .add(vec![hub, (petal + r as u64) % 16], 1 + (hub % 2))
                        .unwrap();
                }
            }
        }
        (q, inst)
    }

    #[test]
    fn cached_subjoins_match_direct_evaluation() {
        let (q, inst) = star_instance(4);
        let mut cache = SubJoinCache::new(&q, &inst).unwrap();
        for mask in 1u32..(1 << 4) {
            let rels: Vec<usize> = (0..4).filter(|i| mask & (1 << i) != 0).collect();
            let direct = join_subset(&q, &inst, &rels).unwrap();
            let cached = cache.join_rels(&rels).unwrap();
            assert_eq!(cached.attrs(), direct.attrs());
            assert_eq!(cached.total(), direct.total());
            assert_eq!(cached.distinct_count(), direct.distinct_count());
        }
        // Every non-empty subset is memoised exactly once.
        assert_eq!(cache.cached_count(), (1 << 4) - 1);
    }

    #[test]
    fn enumeration_reuses_prefixes() {
        let (q, inst) = star_instance(3);
        let mut cache = SubJoinCache::new(&q, &inst).unwrap();
        cache.join_rels(&[0, 1, 2]).unwrap();
        // The chain {0} → {0,1} → {0,1,2} is materialised by one call.
        assert_eq!(cache.cached_count(), 3);
        // Asking for the prefix again computes nothing new.
        cache.join_rels(&[0, 1]).unwrap();
        assert_eq!(cache.cached_count(), 3);
    }

    #[test]
    fn rejects_invalid_masks_and_subsets() {
        let (q, inst) = star_instance(2);
        let mut cache = SubJoinCache::new(&q, &inst).unwrap();
        assert!(cache.join_rels(&[]).is_err());
        assert!(cache.join_rels(&[5]).is_err());
        assert!(cache.join_mask(0).is_err());
        assert!(cache.join_mask(1 << 3).is_err());
    }

    #[test]
    fn mismatched_instance_rejected() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 1)]).unwrap();
        let inst = Instance::new(vec![r1]);
        assert!(SubJoinCache::new(&q, &inst).is_err());
        assert!(ShardedSubJoinCache::new(&q, &inst).is_err());
    }

    #[test]
    fn sharded_cache_matches_sequential_cache() {
        let (q, inst) = star_instance(4);
        let mut sequential = SubJoinCache::new(&q, &inst).unwrap();
        for &threads in &[1usize, 2, 4] {
            let sharded = ShardedSubJoinCache::new(&q, &inst).unwrap();
            sharded
                .populate_proper_subsets(Parallelism::threads(threads))
                .unwrap();
            // All proper non-empty subsets are materialised, nothing else.
            assert_eq!(sharded.cached_count(), (1 << 4) - 2);
            for mask in 1u32..((1 << 4) - 1) {
                let a = sharded.get(mask).expect("populated");
                let b = sequential.join_mask(mask).unwrap();
                assert_eq!(a.as_ref(), b, "mask {mask:#b}, threads {threads}");
            }
            // The full mask is still reachable lazily.
            let full = sharded
                .join_mask((1 << 4) - 1, Parallelism::threads(threads))
                .unwrap();
            assert_eq!(
                full.as_ref(),
                sequential.join_mask((1 << 4) - 1).unwrap(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn populate_sched_stats_account_every_mask_under_both_schedules() {
        let (q, inst) = star_instance(4);
        let mut sequential = SubJoinCache::new(&q, &inst).unwrap();
        // 2^4 - 2 proper non-empty subsets, every one claimed exactly once.
        let proper = (1usize << 4) - 2;
        for sched in [exec::Schedule::Stealing, exec::Schedule::Strided] {
            for &threads in &[1usize, 2, 4] {
                let sharded = ShardedSubJoinCache::new(&q, &inst).unwrap();
                let stats = sharded
                    .populate_proper_subsets_sched(Parallelism::threads(threads), sched)
                    .unwrap();
                assert_eq!(stats.total(), proper, "{sched:?}, threads {threads}");
                assert!(stats.workers() >= 1);
                assert_eq!(sharded.cached_count(), proper);
                for mask in 1u32..((1 << 4) - 1) {
                    assert_eq!(
                        sharded.get(mask).expect("populated").as_ref(),
                        sequential.join_mask(mask).unwrap(),
                        "mask {mask:#b}, {sched:?}, threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_transient_join_matches_memoised() {
        let (q, inst) = star_instance(3);
        let sharded = ShardedSubJoinCache::new(&q, &inst).unwrap();
        let mask = 0b111u32;
        let transient = sharded
            .join_mask_transient(mask, Parallelism::threads(2))
            .unwrap();
        // The top-level result is not memoised, only its prefixes are.
        assert!(sharded.get(mask).is_none());
        let memoised = sharded.join_mask(mask, Parallelism::SEQUENTIAL).unwrap();
        assert_eq!(&transient, memoised.as_ref());
    }

    #[test]
    fn memo_roundtrip_preserves_entries_and_drops_stale_masks() {
        let (q, inst) = star_instance(3);
        let sharded = ShardedSubJoinCache::new(&q, &inst).unwrap();
        sharded
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        let count = sharded.cached_count();
        let mut memo = sharded.into_memo();
        assert_eq!(memo.len(), count);
        // An out-of-range mask (from a hypothetical wider query) is dropped
        // on re-seed instead of poisoning lookups.
        let stale = memo.values().next().unwrap().clone();
        memo.insert(1 << 5, stale);
        let reseeded = ShardedSubJoinCache::with_memo(&q, &inst, memo).unwrap();
        assert_eq!(reseeded.cached_count(), count);
        let mut reference = SubJoinCache::new(&q, &inst).unwrap();
        for mask in 1u32..((1 << 3) - 1) {
            let warm = reseeded.get(mask).expect("seeded entry");
            assert_eq!(warm.as_ref(), reference.join_mask(mask).unwrap());
        }
    }

    fn path_instance(m: usize, per_rel: u64) -> (JoinQuery, Instance) {
        let q = JoinQuery::path(m, 64).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..m {
            for v in 0..per_rel {
                inst.relation_mut(r)
                    .add(vec![v % 64, (v * 3 + 1) % 64], 1 + v % 2)
                    .unwrap();
            }
        }
        (q, inst)
    }

    #[test]
    fn planner_cache_matches_fixed_prefix_and_direct_on_every_mask() {
        let (q, inst) = path_instance(4, 24);
        let plan = Arc::new(crate::plan::JoinPlan::cost_based(&q, &inst).unwrap());
        let mut planned = SubJoinCache::with_plan(&q, &inst, Arc::clone(&plan)).unwrap();
        let mut fixed = SubJoinCache::new(&q, &inst).unwrap();
        let sharded = ShardedSubJoinCache::with_plan(&q, &inst, Arc::clone(&plan)).unwrap();
        assert!(sharded.plan().is_cost_based());
        for mask in 1u32..(1 << 4) {
            let rels: Vec<usize> = (0..4).filter(|i| mask & (1 << i) != 0).collect();
            let direct = join_subset(&q, &inst, &rels).unwrap();
            // Order-insensitive equality: decompositions may emit rows in
            // different construction orders, but the weighted tuple sets —
            // and every aggregate downstream consumers read — must match.
            assert_eq!(planned.join_mask(mask).unwrap(), &direct, "mask {mask:#b}");
            assert_eq!(fixed.join_mask(mask).unwrap(), &direct, "mask {mask:#b}");
            let concurrent = sharded.join_mask(mask, Parallelism::threads(2)).unwrap();
            assert_eq!(concurrent.as_ref(), &direct, "sharded mask {mask:#b}");
            assert_eq!(
                planned.join_rels_transient(&rels).unwrap(),
                direct,
                "transient mask {mask:#b}"
            );
        }
    }

    #[test]
    fn planner_lazy_chains_keep_fewer_intermediate_tuples_on_paths() {
        // {0, 2, 3} under the fixed chain routes through the cross product
        // {0, 2}; the planner peels 0 and keeps the linear {2, 3} instead.
        let (q, inst) = path_instance(4, 32);
        let plan = Arc::new(crate::plan::JoinPlan::cost_based(&q, &inst).unwrap());
        let planned = ShardedSubJoinCache::with_plan(&q, &inst, plan).unwrap();
        let fixed = ShardedSubJoinCache::new(&q, &inst).unwrap();
        let mask = 0b1101u32;
        let a = planned.join_mask(mask, Parallelism::SEQUENTIAL).unwrap();
        let b = fixed.join_mask(mask, Parallelism::SEQUENTIAL).unwrap();
        assert_eq!(a.as_ref(), b.as_ref());
        assert!(
            planned.cached_tuples() < fixed.cached_tuples(),
            "planner {} vs fixed {}",
            planned.cached_tuples(),
            fixed.cached_tuples()
        );
    }

    /// Five relations all joining on `k`; R0 and R1 additionally share the
    /// functionally-correlated `kk = k mod 16`, so the independence
    /// estimate prices their pairwise join 16× too low (estimated 256,
    /// actual 4096) while every other join is estimated honestly.  The
    /// static planner therefore routes every mask containing {0, 1}
    /// through the trap pair; the payload attributes `p0`/`p1` make the
    /// trap join genuinely fat (8×8 payload combinations per key).
    fn correlated_instance() -> (JoinQuery, Instance) {
        use crate::attr::{Attribute, Schema};
        let schema = Schema::new(vec![
            Attribute::new("k", 64),
            Attribute::new("kk", 16),
            Attribute::new("p0", 8),
            Attribute::new("p1", 8),
            Attribute::new("a", 16),
            Attribute::new("b", 16),
            Attribute::new("c", 16),
        ]);
        let q = JoinQuery::new(
            schema,
            vec![
                vec![AttrId(0), AttrId(1), AttrId(2)],
                vec![AttrId(0), AttrId(1), AttrId(3)],
                vec![AttrId(0), AttrId(4)],
                vec![AttrId(0), AttrId(5)],
                vec![AttrId(0), AttrId(6)],
            ],
        )
        .unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for x in 0..64u64 {
            for j in 0..8u64 {
                inst.relation_mut(0).add(vec![x, x % 16, j], 1).unwrap();
                inst.relation_mut(1).add(vec![x, x % 16, j], 1).unwrap();
            }
            inst.relation_mut(2).add(vec![x, x % 16], 1).unwrap();
            inst.relation_mut(3).add(vec![x, x % 16], 1).unwrap();
            inst.relation_mut(4).add(vec![x, x % 16], 1).unwrap();
        }
        (q, inst)
    }

    #[test]
    fn adaptive_populate_matches_static_and_records_feedback() {
        let (q, inst) = correlated_instance();
        let m = q.num_relations();
        let plan = Arc::new(crate::plan::JoinPlan::cost_based(&q, &inst).unwrap());
        let reference = ShardedSubJoinCache::with_plan(&q, &inst, Arc::clone(&plan)).unwrap();
        reference
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        let config = PlanConfig::with_replan_ratio(8.0);
        for &threads in &[1usize, 2, 4] {
            let mut adaptive =
                ShardedSubJoinCache::with_plan(&q, &inst, Arc::clone(&plan)).unwrap();
            let (sched_stats, replan) = adaptive
                .populate_proper_subsets_adaptive(
                    Parallelism::threads(threads),
                    exec::Schedule::Stealing,
                    &config,
                )
                .unwrap();
            // Every proper mask is materialised and byte-identical to the
            // static populate, at every thread count.
            assert_eq!(sched_stats.total(), (1 << m) - 2, "threads {threads}");
            for mask in 1u32..((1u32 << m) - 1) {
                assert_eq!(
                    adaptive.get(mask).expect("populated").as_ref(),
                    reference.get(mask).expect("populated").as_ref(),
                    "mask {mask:#b}, threads {threads}"
                );
            }
            // The correlated pair blew its estimate: the feedback loop saw
            // it, triggered, and re-planned at least once, identically at
            // every thread count.
            assert_eq!(replan.measured, (1 << m) - 2);
            assert!(replan.triggers >= 1, "threads {threads}: {replan:?}");
            assert!(replan.replans >= 1, "threads {threads}: {replan:?}");
            assert!(replan.max_error >= 15.0, "threads {threads}: {replan:?}");
            assert_eq!(adaptive.replan_stats(), Some(&replan));
        }
    }

    #[test]
    fn adaptive_lazy_walks_cut_intermediates_on_correlated_pairs() {
        let (q, inst) = correlated_instance();
        let m = q.num_relations();
        let plan = Arc::new(crate::plan::JoinPlan::cost_based(&q, &inst).unwrap());
        // Local-sensitivity-style workload: every size-(m-1) subset,
        // consumed transiently (targets are not memoised; only the chain
        // intermediates stay resident).
        let targets: Vec<u32> = (0..m as u32)
            .map(|r| ((1u32 << m) - 1) & !(1u32 << r))
            .collect();
        let static_cache = ShardedSubJoinCache::with_plan(&q, &inst, Arc::clone(&plan)).unwrap();
        let mut adaptive_cache =
            ShardedSubJoinCache::with_plan(&q, &inst, Arc::clone(&plan)).unwrap();
        let config = PlanConfig::with_replan_ratio(8.0);
        for &t in &targets {
            let s = static_cache
                .join_mask_transient(t, Parallelism::SEQUENTIAL)
                .unwrap();
            let a = adaptive_cache
                .join_mask_transient_adaptive(t, Parallelism::SEQUENTIAL, &config)
                .unwrap();
            assert_eq!(a, s, "target {t:#b}");
        }
        let static_tuples = static_cache.cached_tuples();
        let adaptive_tuples = adaptive_cache.cached_tuples();
        // The headline acceptance bound: ≥1.5× fewer resident intermediate
        // tuples on the correlated workload.
        assert!(
            2 * static_tuples >= 3 * adaptive_tuples,
            "static {static_tuples} vs adaptive {adaptive_tuples}"
        );
    }

    #[test]
    fn adaptive_walks_stay_correct_under_stress_ratio() {
        // Ratio 1: any deviation re-plans (the CI stress configuration).
        let (q, inst) = correlated_instance();
        let m = q.num_relations();
        let plan = Arc::new(crate::plan::JoinPlan::cost_based(&q, &inst).unwrap());
        let mut stress = ShardedSubJoinCache::with_plan(&q, &inst, Arc::clone(&plan)).unwrap();
        let config = PlanConfig::with_replan_ratio(1.0);
        let mut reference = SubJoinCache::with_plan(&q, &inst, Arc::clone(&plan)).unwrap();
        let full = (1u32 << m) - 1;
        for mask in 1u32..=full {
            let a = stress
                .join_mask_adaptive(mask, Parallelism::SEQUENTIAL, &config)
                .unwrap();
            assert_eq!(a.as_ref(), reference.join_mask(mask).unwrap(), "{mask:#b}");
        }
    }

    #[test]
    fn aggregate_reads_match_the_materializing_oracle_on_every_mask() {
        let (q, inst) = star_instance(4);
        let m = q.num_relations();
        for mode in [AggMode::Auto, AggMode::Always, AggMode::Never] {
            for &threads in &[1usize, 2, 4] {
                let mut cache = ShardedSubJoinCache::new(&q, &inst).unwrap();
                cache.agg_mode = mode;
                let par = Parallelism::threads(threads);
                for mask in 1u32..(1 << m) {
                    let rels: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
                    let direct = join_subset(&q, &inst, &rels).unwrap();
                    let boundary = q.boundary(&rels).unwrap();
                    for y in [&boundary[..], &[]] {
                        assert_eq!(
                            cache.max_group_weight(mask, y, par).unwrap(),
                            direct.max_group_weight(y).unwrap(),
                            "mask {mask:#b}, {mode:?}, threads {threads}, y {y:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn demanded_populate_skips_terminal_masks_and_stays_correct() {
        let (q, inst) = star_instance(4);
        let m = q.num_relations();
        let full = (1u32 << m) - 1;
        let reference = ShardedSubJoinCache::new(&q, &inst).unwrap();
        reference
            .populate_proper_subsets(Parallelism::SEQUENTIAL)
            .unwrap();
        let config = PlanConfig::default();
        for &threads in &[1usize, 2, 4] {
            let mut cache = ShardedSubJoinCache::new(&q, &inst).unwrap();
            let (sched_stats, _) = cache
                .populate_demanded_adaptive(
                    Parallelism::threads(threads),
                    exec::Schedule::Stealing,
                    &config,
                )
                .unwrap();
            // Under the fixed-prefix plan the chain parents are exactly the
            // non-empty subsets of {0, …, m-2}: every terminal mask (one
            // containing relation m-1) is skipped, halving the populate.
            let parents = (1usize << (m - 1)) - 1;
            assert_eq!(sched_stats.total(), parents, "threads {threads}");
            assert_eq!(cache.cached_count(), parents, "threads {threads}");
            for mask in 1u32..full {
                let materialized = cache.get(mask).is_some();
                assert_eq!(
                    materialized,
                    mask & (1 << (m - 1)) == 0,
                    "mask {mask:#b}, threads {threads}"
                );
                // Aggregate reads over the skipped masks are byte-identical
                // to the fully-materialised reference.
                let rels: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
                let boundary = q.boundary(&rels).unwrap();
                assert_eq!(
                    cache
                        .max_group_weight(mask, &boundary, Parallelism::SEQUENTIAL)
                        .unwrap(),
                    reference
                        .get(mask)
                        .unwrap()
                        .max_group_weight(&boundary)
                        .unwrap(),
                    "mask {mask:#b}, threads {threads}"
                );
            }
            // Fixed-size summaries are cheaper than the tuples they replace.
            assert!(
                cache.cached_bytes() < reference.cached_bytes(),
                "agg {} vs materialized {} bytes, threads {threads}",
                cache.cached_bytes(),
                reference.cached_bytes()
            );
            assert!(cache.cached_agg_count() > 0, "threads {threads}");
        }
    }

    #[test]
    fn aggregate_overlay_round_trips_and_reuses_exact_group_hits() {
        let (q, inst) = star_instance(3);
        let mut cache = ShardedSubJoinCache::new(&q, &inst).unwrap();
        cache.agg_mode = AggMode::Always;
        let mask = 0b101u32;
        let boundary = q.boundary(&[0, 2]).unwrap();
        let first = cache
            .max_group_weight(mask, &boundary, Parallelism::SEQUENTIAL)
            .unwrap();
        assert_eq!(cache.cached_agg_count(), 1);
        // A repeat read with the same grouping serves the overlay entry.
        assert_eq!(
            cache
                .max_group_weight(mask, &boundary, Parallelism::SEQUENTIAL)
                .unwrap(),
            first
        );
        assert_eq!(cache.cached_agg_count(), 1);
        // A different grouping misses the overlay, recomputes correctly and
        // replaces the entry.
        let total = cache
            .max_group_weight(mask, &[], Parallelism::SEQUENTIAL)
            .unwrap();
        assert_eq!(
            total,
            join_subset(&q, &inst, &[0, 2]).unwrap().total(),
            "empty grouping folds the total join weight"
        );
        assert_eq!(cache.cached_agg_count(), 1);
        // The overlay survives a checkout round trip; stale masks are
        // dropped on re-seed like the materialised memo does.
        let mut entries = cache.agg_entries();
        assert_eq!(entries.len(), 1);
        entries.insert(
            1 << 5,
            Arc::new(AggSummary {
                group_by: Vec::new(),
                max_group_weight: 0,
                total_weight: 0,
                distinct_count: 0,
            }),
        );
        let warm = ShardedSubJoinCache::new(&q, &inst).unwrap();
        warm.seed_agg(entries);
        assert_eq!(warm.cached_agg_count(), 1, "out-of-range mask dropped");
        assert_eq!(
            warm.max_group_weight(mask, &[], Parallelism::SEQUENTIAL)
                .unwrap(),
            total
        );
    }

    #[test]
    fn plan_for_mismatched_arity_is_rejected() {
        let (q, inst) = star_instance(3);
        let wrong = Arc::new(crate::plan::JoinPlan::fixed_prefix(5));
        assert!(SubJoinCache::with_plan(&q, &inst, Arc::clone(&wrong)).is_err());
        assert!(ShardedSubJoinCache::with_plan(&q, &inst, wrong).is_err());
    }

    #[test]
    fn sharded_cache_rejects_invalid_masks() {
        let (q, inst) = star_instance(2);
        let sharded = ShardedSubJoinCache::new(&q, &inst).unwrap();
        assert!(sharded.join_mask(0, Parallelism::SEQUENTIAL).is_err());
        assert!(sharded.join_mask(1 << 3, Parallelism::SEQUENTIAL).is_err());
        assert!(sharded.mask_of(&[5]).is_err());
    }
}
