//! Attributes, finite domains and schemas.
//!
//! The paper models each attribute `x` as having a finite domain `dom(x)`.
//! We represent domain elements as integers `0..domain_size`, which is fully
//! general for the algorithms in the paper (only equality on join attributes
//! and per-relation linear query weights matter).

use crate::error::RelationalError;
use crate::Result;

/// Identifier of an attribute within a [`Schema`].
///
/// Attribute ids are dense indices `0..schema.attr_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for AttrId {
    fn from(v: u16) -> Self {
        AttrId(v)
    }
}

impl std::fmt::Display for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named attribute with a finite integer domain `{0, …, domain_size-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Human-readable name (e.g. `"A"`, `"user_id"`).
    pub name: String,
    /// Number of distinct values in the attribute's domain.
    pub domain_size: u64,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: impl Into<String>, domain_size: u64) -> Self {
        Attribute {
            name: name.into(),
            domain_size,
        }
    }
}

/// The global attribute set `x` of a join query, with per-attribute domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from an ordered list of attributes.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Schema { attrs }
    }

    /// Convenience constructor: attributes named by `names`, all with the same
    /// domain size.
    pub fn uniform(names: &[&str], domain_size: u64) -> Self {
        Schema {
            attrs: names
                .iter()
                .map(|n| Attribute::new(*n, domain_size))
                .collect(),
        }
    }

    /// Number of attributes in the schema.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// All attribute ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attrs.len() as u16).map(AttrId)
    }

    /// All attribute ids collected into a vector.
    pub fn all_ids(&self) -> Vec<AttrId> {
        self.ids().collect()
    }

    /// Looks up an attribute by id.
    pub fn attr(&self, id: AttrId) -> Result<&Attribute> {
        self.attrs
            .get(id.index())
            .ok_or(RelationalError::UnknownAttribute {
                attr: id.0,
                schema_len: self.attrs.len(),
            })
    }

    /// Domain size of an attribute.
    pub fn domain_size(&self, id: AttrId) -> Result<u64> {
        Ok(self.attr(id)?.domain_size)
    }

    /// Looks up an attribute id by name.
    pub fn id_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u16))
    }

    /// Product of the domain sizes of `ids` (the size of `dom(y)` for a set of
    /// attributes `y`).  Returns `1` for the empty set.
    pub fn joint_domain_size(&self, ids: &[AttrId]) -> Result<u128> {
        let mut prod: u128 = 1;
        for id in ids {
            prod = prod.saturating_mul(self.domain_size(*id)? as u128);
        }
        Ok(prod)
    }

    /// `log2` of the joint domain size of all attributes (the `log |D|` term
    /// in the paper's error bounds).
    pub fn log2_full_domain(&self) -> f64 {
        self.attrs
            .iter()
            .map(|a| (a.domain_size.max(1) as f64).log2())
            .sum()
    }

    /// Validates that `id` exists in the schema.
    pub fn check_attr(&self, id: AttrId) -> Result<()> {
        self.attr(id).map(|_| ())
    }

    /// Validates that every id in `ids` exists, is sorted strictly increasing.
    pub fn check_attr_list(&self, ids: &[AttrId]) -> Result<()> {
        if ids.is_empty() {
            return Err(RelationalError::InvalidAttributeList(
                "attribute list is empty".to_string(),
            ));
        }
        for w in ids.windows(2) {
            if w[0] >= w[1] {
                return Err(RelationalError::InvalidAttributeList(format!(
                    "attribute list must be strictly increasing, found {} then {}",
                    w[0], w[1]
                )));
            }
        }
        for id in ids {
            self.check_attr(*id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Attribute::new("A", 4),
            Attribute::new("B", 8),
            Attribute::new("C", 16),
        ])
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = abc();
        assert_eq!(s.attr_count(), 3);
        assert_eq!(s.id_by_name("B"), Some(AttrId(1)));
        assert_eq!(s.id_by_name("Z"), None);
        assert_eq!(s.attr(AttrId(2)).unwrap().name, "C");
        assert!(s.attr(AttrId(3)).is_err());
    }

    #[test]
    fn joint_domain_size_multiplies() {
        let s = abc();
        assert_eq!(s.joint_domain_size(&[]).unwrap(), 1);
        assert_eq!(s.joint_domain_size(&[AttrId(0), AttrId(2)]).unwrap(), 64);
        assert_eq!(s.joint_domain_size(&s.all_ids()).unwrap(), 4 * 8 * 16);
    }

    #[test]
    fn log2_full_domain_matches() {
        let s = abc();
        let expect = (4.0f64).log2() + (8.0f64).log2() + (16.0f64).log2();
        assert!((s.log2_full_domain() - expect).abs() < 1e-12);
    }

    #[test]
    fn check_attr_list_rejects_unsorted_and_dups() {
        let s = abc();
        assert!(s.check_attr_list(&[AttrId(0), AttrId(1)]).is_ok());
        assert!(s.check_attr_list(&[AttrId(1), AttrId(0)]).is_err());
        assert!(s.check_attr_list(&[AttrId(1), AttrId(1)]).is_err());
        assert!(s.check_attr_list(&[]).is_err());
        assert!(s.check_attr_list(&[AttrId(7)]).is_err());
    }

    #[test]
    fn uniform_schema() {
        let s = Schema::uniform(&["A", "B"], 10);
        assert_eq!(s.attr_count(), 2);
        assert_eq!(s.domain_size(AttrId(1)).unwrap(), 10);
    }
}
