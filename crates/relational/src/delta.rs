//! Incremental (delta) join maintenance for single-tuple neighbour edits.
//!
//! The sensitivity computations of the paper sweep **neighbouring edits**:
//! instances `I' = I ± t*` that differ from `I` by one copy of one tuple in
//! one relation (Definition 1.1).  Materialising every `I'` and re-running
//! the full hash join makes an edit sweep cost `O(edits × full-join)` — the
//! dominant cost of the brute-force smooth-sensitivity checker and of
//! local-sensitivity verification sweeps.
//!
//! This module exploits that every join aggregate is **multilinear** in the
//! per-relation frequency vectors: changing `R_{i0}(t*)` by `±1` changes
//!
//! * the join size by `Σ_{u ∈ J_{[m]∖{i0}} : u ∼ t*} w(u)` — one grouped
//!   lookup of `t*`'s boundary projection, and
//! * each grouped sub-join weight `T_{E}` with `i0 ∈ E` by the weight of
//!   `t*` semi-joined against the sub-join of `E ∖ {i0}` — one hash probe of
//!   `t*` through the cached sub-join lattice.
//!
//! A [`DeltaJoinPlan`] precomputes, from the sub-join lattice a
//! [`ShardedSubJoinCache`] already holds, the grouped maps and probe indexes
//! these formulas need.  Afterwards every edit costs `O(matches)` hash-map
//! work instead of a full join: [`DeltaJoinPlan::join_size_delta`] returns
//! the signed join-size change, and [`DeltaJoinPlan::max_boundary_after`]
//! returns `max_i T_{[m]∖{i}}(I')` — the local sensitivity of the edited
//! instance — **without building any `JoinResult` over `I'`**.
//!
//! ### Exactness and determinism
//!
//! All arithmetic is the engine's exact `u128` weight arithmetic, so delta
//! results are equal (not merely close) to re-joining the edited instance
//! from scratch; the property tests cross-check delta ≡ full-rejoin ≡ naive
//! on randomized instances and edits.  Evaluation is read-only (`&self`),
//! so edit sweeps parallelise over edits through [`crate::exec::par_map`]
//! with byte-identical output at every worker count.  The one caveat is
//! saturation: weights saturate at `u128::MAX` instead of overflowing, and
//! on such astronomically large joins an incremental subtraction can differ
//! from a saturated recomputation — the same regime in which the full
//! engine's fold-order already affects saturated totals.
//!
//! ### Plan lifetime
//!
//! A plan is **fully owned** (no borrows of the query or instance), so a
//! long-lived [`crate::ExecContext`] retains it in its per-instance LRU slot
//! ([`crate::ExecContext::delta_plan`]) and repeated sweeps over the same
//! `(query, instance)` pair skip the precomputation entirely.  A plan
//! describes one base instance; edits are always interpreted against that
//! base (apply one edit at a time — for multi-edit distances, rebuild on the
//! edited instance, as the smooth-sensitivity BFS does per frontier node).

use crate::attr::AttrId;
use crate::cache::ShardedSubJoinCache;
use crate::error::RelationalError;
use crate::exec::Parallelism;
use crate::hash::{FxHashMap, FxHashSet};
use crate::hypergraph::JoinQuery;
use crate::instance::{Instance, NeighborEdit};
use crate::tuple::{intersect_attrs, union_attrs, TupleKey, Value};
use crate::Result;

/// The signed change `count(I') - count(I)` of the join size under one
/// neighbouring edit, kept as a magnitude plus direction so the full `u128`
/// weight range stays representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSizeDelta {
    /// `|count(I') - count(I)|`.
    pub magnitude: u128,
    /// `true` for a removal edit (the join shrinks), `false` for an addition.
    pub removal: bool,
}

impl JoinSizeDelta {
    /// Applies the delta to a base join size (saturating, like the engine's
    /// weight arithmetic).
    pub fn apply(&self, base: u128) -> u128 {
        if self.removal {
            base.saturating_sub(self.magnitude)
        } else {
            base.saturating_add(self.magnitude)
        }
    }
}

/// Where each value of a touched boundary-group key comes from: the edited
/// tuple itself, or the rest-key of a probed lattice entry.
#[derive(Debug, Clone, Copy)]
enum GroupSource {
    /// Position within the edited relation's tuple.
    Edit(usize),
    /// Position within the probe entry's rest key.
    Rest(usize),
}

/// Per edit direction `i`: the base grouped weights of the sub-join
/// `J_{[m]∖{i}}` over the boundary `∂([m]∖{i})`.
#[derive(Debug)]
struct DirectionBase {
    /// `∂([m]∖{i})` — the attributes of `x_i` shared with the others.
    boundary: Vec<AttrId>,
    /// Positions of the boundary attributes within `x_i` (for join-size
    /// probes of edits in relation `i`).
    boundary_positions: Vec<usize>,
    /// Grouped base weights: `g ↦ T_{[m]∖{i}, g}(I)`.
    groups: FxHashMap<TupleKey, u128>,
    /// The same groups sorted by descending weight (ties broken by key), so
    /// the post-edit maximum over *untouched* groups is a short prefix walk.
    sorted: Vec<(u128, TupleKey)>,
    /// `T_{[m]∖{i}}(I)` — the base maximum (1 for `m = 1` by the `T_∅ = 1`
    /// convention).
    base_max: u128,
}

/// Probe state for edits in relation `i0` evaluated against direction
/// `i ≠ i0`: the sub-join `J_S` of `S = [m]∖{i, i0}` grouped by the
/// attributes an edit probe needs, indexed by the shared attributes
/// `x_{i0} ∩ attrs(S)`.
#[derive(Debug)]
struct PairProbe {
    /// Positions (within `x_{i0}`) of the shared attributes the probe keys on.
    sh_positions: Vec<usize>,
    /// How to assemble the full boundary-group key of direction `i` from the
    /// edited tuple and a matched rest key.
    group_plan: Vec<GroupSource>,
    /// `π_sh ↦ [(π_rest, w)]`: for each shared-attribute value the matching
    /// `J_S` groups (rest keys are distinct per shared key by construction).
    index: FxHashMap<TupleKey, Vec<(TupleKey, u128)>>,
}

/// Precomputed state for evaluating single-tuple edits against one base
/// `(query, instance)` pair without re-joining (see the module docs).
#[derive(Debug)]
pub struct DeltaJoinPlan {
    num_relations: usize,
    rel_attrs: Vec<Vec<AttrId>>,
    /// Distinct tuples per relation, for validating removal edits exactly
    /// like [`Instance::apply_edit`] does (presence is all that matters:
    /// multiplicities never enter the delta formulas).
    rel_tuples: Vec<FxHashSet<TupleKey>>,
    directions: Vec<DirectionBase>,
    /// `pairs[i0][i]` for `i ≠ i0` (the diagonal stays `None`: the direction
    /// excluding the edited relation is unaffected by the edit).
    pairs: Vec<Vec<Option<PairProbe>>>,
}

impl DeltaJoinPlan {
    /// Builds a plan from the sub-join lattice of `cache` (which must have
    /// been created over the same `(query, instance)` pair).  Missing lattice
    /// entries are materialised on the way — on a warm cache (e.g. one
    /// checked out of an [`crate::ExecContext`]) the precomputation reuses
    /// every previously computed sub-join.
    pub fn build(
        query: &JoinQuery,
        instance: &Instance,
        cache: &ShardedSubJoinCache<'_>,
        par: Parallelism,
    ) -> Result<Self> {
        let m = query.num_relations();
        if instance.num_relations() != m {
            return Err(RelationalError::RelationCountMismatch {
                expected: m,
                got: instance.num_relations(),
            });
        }
        let rel_attrs: Vec<Vec<AttrId>> =
            (0..m).map(|i| query.relation_attrs(i).to_vec()).collect();
        let rel_tuples: Vec<FxHashSet<TupleKey>> = instance
            .relations()
            .iter()
            .map(|r| r.iter().map(|(t, _)| TupleKey::from_slice(t)).collect())
            .collect();

        let full: u32 = (1u32 << m) - 1;

        // Per-direction base grouped maps: one transient size-(m-1) sub-join
        // each (their shared prefixes are memoised in the lattice; the big
        // top-level results are grouped and dropped, never pinned).
        let mut directions = Vec::with_capacity(m);
        for (i, attrs) in rel_attrs.iter().enumerate() {
            let others_mask = full & !(1u32 << i);
            if others_mask == 0 {
                // m = 1: T_∅ = 1 by convention, and no edit can change it.
                directions.push(DirectionBase {
                    boundary: Vec::new(),
                    boundary_positions: Vec::new(),
                    groups: FxHashMap::default(),
                    sorted: Vec::new(),
                    base_max: 1,
                });
                continue;
            }
            let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
            let boundary = query.boundary(&others)?;
            let boundary_positions = crate::tuple::project_positions(attrs, &boundary)?;
            let joined = cache.join_mask_transient(others_mask, par)?;
            let groups = joined.group_by_key(&boundary)?;
            let mut sorted: Vec<(u128, TupleKey)> =
                groups.iter().map(|(k, &w)| (w, k.clone())).collect();
            sorted.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            let base_max = sorted.first().map(|&(w, _)| w).unwrap_or(0);
            directions.push(DirectionBase {
                boundary,
                boundary_positions,
                groups,
                sorted,
                base_max,
            });
        }

        // Per (edited relation, direction) pair: the probe index over
        // J_{[m]∖{i, i0}} (memoised in the lattice — these are exactly the
        // size-(m-2) entries the boundary-value enumeration shares).
        let mut pairs: Vec<Vec<Option<PairProbe>>> = Vec::with_capacity(m);
        for (i0, edit_attrs) in rel_attrs.iter().enumerate() {
            let mut row: Vec<Option<PairProbe>> = Vec::with_capacity(m);
            for (i, direction) in directions.iter().enumerate() {
                if i == i0 {
                    row.push(None);
                    continue;
                }
                let s_mask = full & !(1u32 << i) & !(1u32 << i0);
                let s_rels: Vec<usize> = (0..m).filter(|&j| j != i && j != i0).collect();
                let a2 = query.union_attrs(&s_rels)?;
                let sh = intersect_attrs(edit_attrs, &a2);
                let rest: Vec<AttrId> = direction
                    .boundary
                    .iter()
                    .copied()
                    .filter(|a| edit_attrs.binary_search(a).is_err())
                    .collect();
                let key_attrs = union_attrs(&sh, &rest);
                let sh_positions = crate::tuple::project_positions(edit_attrs, &sh)?;
                let sh_in_key = crate::tuple::project_positions(&key_attrs, &sh)?;
                let rest_in_key = crate::tuple::project_positions(&key_attrs, &rest)?;
                // Boundary attributes of direction i come from the edited
                // tuple where x_{i0} covers them, otherwise from the rest key.
                let group_plan: Vec<GroupSource> = direction
                    .boundary
                    .iter()
                    .map(|a| match edit_attrs.binary_search(a) {
                        Ok(p) => GroupSource::Edit(p),
                        Err(_) => GroupSource::Rest(
                            rest.binary_search(a).expect("rest covers non-edit attrs"),
                        ),
                    })
                    .collect();
                let grouped: FxHashMap<TupleKey, u128> = if s_mask == 0 {
                    // S = ∅: the empty join is the unit annotation (weight 1).
                    let mut unit = FxHashMap::default();
                    unit.insert(TupleKey::from_slice(&[]), 1u128);
                    unit
                } else {
                    cache.join_mask(s_mask, par)?.group_by_key(&key_attrs)?
                };
                let mut index: FxHashMap<TupleKey, Vec<(TupleKey, u128)>> = FxHashMap::default();
                for (key, w) in grouped {
                    let sh_key = TupleKey::from_fn(sh_in_key.len(), |k| key[sh_in_key[k]]);
                    let rest_key = TupleKey::from_fn(rest_in_key.len(), |k| key[rest_in_key[k]]);
                    index.entry(sh_key).or_default().push((rest_key, w));
                }
                row.push(Some(PairProbe {
                    sh_positions,
                    group_plan,
                    index,
                }));
            }
            pairs.push(row);
        }

        Ok(DeltaJoinPlan {
            num_relations: m,
            rel_attrs,
            rel_tuples,
            directions,
            pairs,
        })
    }

    /// Number of relations of the plan's query.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// The base local sensitivity `max_i T_{[m]∖{i}}(I)` of the plan's
    /// instance (precomputed; no probing).
    pub fn base_max_boundary(&self) -> u128 {
        self.directions
            .iter()
            .map(|d| d.base_max)
            .max()
            .unwrap_or(0)
    }

    /// Validates an edit against the base instance, mirroring the errors of
    /// [`Instance::apply_edit`]: relation in range, matching arity, and (for
    /// removals) positive base frequency.
    fn check_edit<'e>(&self, edit: &'e NeighborEdit) -> Result<(usize, &'e [Value], bool)> {
        let (relation, tuple, removal) = (edit.relation(), edit.tuple(), edit.is_removal());
        if relation >= self.num_relations {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "edit targets relation {relation} of a {}-relation query",
                self.num_relations
            )));
        }
        if tuple.len() != self.rel_attrs[relation].len() {
            return Err(RelationalError::ArityMismatch {
                expected: self.rel_attrs[relation].len(),
                got: tuple.len(),
            });
        }
        if removal && !self.rel_tuples[relation].contains(tuple) {
            return Err(RelationalError::FrequencyUnderflow);
        }
        Ok((relation, tuple, removal))
    }

    /// The signed join-size change of applying `edit` to the base instance:
    /// one grouped lookup of the edited tuple's boundary projection, no join.
    pub fn join_size_delta(&self, edit: &NeighborEdit) -> Result<JoinSizeDelta> {
        let (relation, tuple, removal) = self.check_edit(edit)?;
        let dir = &self.directions[relation];
        let magnitude = if self.num_relations == 1 {
            1
        } else {
            let key = TupleKey::from_fn(dir.boundary_positions.len(), |k| {
                tuple[dir.boundary_positions[k]]
            });
            dir.groups.get(key.as_slice()).copied().unwrap_or(0)
        };
        Ok(JoinSizeDelta { magnitude, removal })
    }

    /// `T_{[m]∖{i}}(I')` for the instance obtained by applying `edit`: the
    /// direction's post-edit maximum boundary-group weight, by probing the
    /// edited tuple through the precomputed pair index.
    pub fn boundary_after(&self, direction: usize, edit: &NeighborEdit) -> Result<u128> {
        let (relation, tuple, removal) = self.check_edit(edit)?;
        if direction >= self.num_relations {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "direction {direction} of a {}-relation query",
                self.num_relations
            )));
        }
        Ok(self.direction_after(direction, relation, tuple, removal))
    }

    /// `LS_count(I') = max_i T_{[m]∖{i}}(I')` for the edited instance —
    /// the per-edit quantity the smooth-sensitivity sweeps maximise.
    pub fn max_boundary_after(&self, edit: &NeighborEdit) -> Result<u128> {
        let (relation, tuple, removal) = self.check_edit(edit)?;
        let mut best = 0u128;
        for i in 0..self.num_relations {
            best = best.max(self.direction_after(i, relation, tuple, removal));
        }
        Ok(best)
    }

    fn direction_after(&self, i: usize, i0: usize, tuple: &[Value], removal: bool) -> u128 {
        let dir = &self.directions[i];
        if i == i0 {
            // The sub-join excluding the edited relation never changes.
            return dir.base_max;
        }
        let probe = self.pairs[i0][i].as_ref().expect("off-diagonal pair");
        let sh_key = TupleKey::from_fn(probe.sh_positions.len(), |k| tuple[probe.sh_positions[k]]);
        let matches = match probe.index.get(sh_key.as_slice()) {
            // The edited tuple joins nothing: every group keeps its weight.
            None => return dir.base_max,
            Some(matches) => matches,
        };
        // Touched groups get base ± w; the maximum over untouched groups is
        // the first entry of the sorted base list whose key is untouched.
        let mut touched: FxHashMap<TupleKey, u128> = FxHashMap::default();
        let mut touched_max = 0u128;
        for (rest_key, w) in matches {
            let g = TupleKey::from_fn(probe.group_plan.len(), |k| match probe.group_plan[k] {
                GroupSource::Edit(p) => tuple[p],
                GroupSource::Rest(p) => rest_key[p],
            });
            let base = dir.groups.get(g.as_slice()).copied().unwrap_or(0);
            let after = if removal {
                // A removal needs base frequency ≥ 1, whose contribution to
                // the group is at least w — never underflows off saturation.
                debug_assert!(base >= *w, "removal delta exceeds base group weight");
                base.saturating_sub(*w)
            } else {
                base.saturating_add(*w)
            };
            touched_max = touched_max.max(after);
            touched.insert(g, after);
        }
        let untouched_max = dir
            .sorted
            .iter()
            .find(|(_, key)| !touched.contains_key(key.as_slice()))
            .map(|&(w, _)| w)
            .unwrap_or(0);
        touched_max.max(untouched_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::join_size;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn two_table() -> (JoinQuery, Instance) {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 = Relation::from_tuples(
            ids(&[1, 2]),
            vec![(vec![0, 0], 1), (vec![0, 1], 1), (vec![1, 3], 3)],
        )
        .unwrap();
        (q, Instance::new(vec![r1, r2]))
    }

    fn plan_for<'a>(q: &'a JoinQuery, inst: &'a Instance) -> DeltaJoinPlan {
        let cache = ShardedSubJoinCache::new(q, inst).unwrap();
        DeltaJoinPlan::build(q, inst, &cache, Parallelism::SEQUENTIAL).unwrap()
    }

    /// Local sensitivity of an instance the slow way, as the oracle.
    fn ls_oracle(q: &JoinQuery, inst: &Instance) -> u128 {
        let m = q.num_relations();
        let mut best = 0u128;
        for i in 0..m {
            let others: Vec<usize> = (0..m).filter(|&j| j != i).collect();
            let t = if others.is_empty() {
                1
            } else {
                let boundary = q.boundary(&others).unwrap();
                crate::join::join_subset(q, inst, &others)
                    .unwrap()
                    .max_group_weight(&boundary)
                    .unwrap()
            };
            best = best.max(t);
        }
        best
    }

    #[test]
    fn join_size_delta_matches_rejoin_on_every_removal() {
        let (q, inst) = two_table();
        let plan = plan_for(&q, &inst);
        let base = join_size(&q, &inst).unwrap();
        for edit in inst.removal_edits() {
            let delta = plan.join_size_delta(&edit).unwrap();
            assert!(delta.removal);
            let rejoined = join_size(&q, &inst.apply_edit(&edit).unwrap()).unwrap();
            assert_eq!(delta.apply(base), rejoined, "edit {edit:?}");
        }
    }

    #[test]
    fn join_size_delta_matches_rejoin_on_additions() {
        let (q, inst) = two_table();
        let plan = plan_for(&q, &inst);
        let base = join_size(&q, &inst).unwrap();
        for relation in 0..2usize {
            for a in 0..4u64 {
                for b in 0..4u64 {
                    let edit = NeighborEdit::Add {
                        relation,
                        tuple: vec![a, b],
                    };
                    let delta = plan.join_size_delta(&edit).unwrap();
                    assert!(!delta.removal);
                    let rejoined = join_size(&q, &inst.apply_edit(&edit).unwrap()).unwrap();
                    assert_eq!(delta.apply(base), rejoined, "edit {edit:?}");
                }
            }
        }
    }

    #[test]
    fn max_boundary_after_matches_recomputed_local_sensitivity() {
        let (q, inst) = two_table();
        let plan = plan_for(&q, &inst);
        assert_eq!(plan.base_max_boundary(), ls_oracle(&q, &inst));
        let mut edits = inst.removal_edits();
        for relation in 0..2usize {
            for v in 0..4u64 {
                edits.push(NeighborEdit::Add {
                    relation,
                    tuple: vec![v, (v + 1) % 4],
                });
            }
        }
        for edit in &edits {
            let neighbor = inst.apply_edit(edit).unwrap();
            assert_eq!(
                plan.max_boundary_after(edit).unwrap(),
                ls_oracle(&q, &neighbor),
                "edit {edit:?}"
            );
            // Per-direction values match too.
            for i in 0..2usize {
                let others: Vec<usize> = (0..2).filter(|&j| j != i).collect();
                let boundary = q.boundary(&others).unwrap();
                let expect = crate::join::join_subset(&q, &neighbor, &others)
                    .unwrap()
                    .max_group_weight(&boundary)
                    .unwrap();
                assert_eq!(
                    plan.boundary_after(i, edit).unwrap(),
                    expect,
                    "direction {i}, edit {edit:?}"
                );
            }
        }
    }

    #[test]
    fn star_edits_match_recomputation() {
        let q = JoinQuery::star(3, 8).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for a in 0..2u64 {
            inst.relation_mut(0).add(vec![0, a], 1).unwrap();
        }
        for a in 0..3u64 {
            inst.relation_mut(1).add(vec![0, a], 2).unwrap();
        }
        for a in 0..4u64 {
            inst.relation_mut(2).add(vec![(a % 2), a], 1).unwrap();
        }
        let plan = plan_for(&q, &inst);
        let base = join_size(&q, &inst).unwrap();
        let mut edits = inst.removal_edits();
        for relation in 0..3usize {
            for hub in 0..3u64 {
                edits.push(NeighborEdit::Add {
                    relation,
                    tuple: vec![hub, 7],
                });
            }
        }
        for edit in &edits {
            let neighbor = inst.apply_edit(edit).unwrap();
            assert_eq!(
                plan.join_size_delta(edit).unwrap().apply(base),
                join_size(&q, &neighbor).unwrap(),
                "edit {edit:?}"
            );
            assert_eq!(
                plan.max_boundary_after(edit).unwrap(),
                ls_oracle(&q, &neighbor),
                "edit {edit:?}"
            );
        }
    }

    #[test]
    fn single_relation_query_deltas_are_unit() {
        let schema = crate::attr::Schema::new(vec![crate::attr::Attribute::new("A", 4)]);
        let q = JoinQuery::new(schema, vec![ids(&[0])]).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        inst.relation_mut(0).add(vec![1], 3).unwrap();
        let plan = plan_for(&q, &inst);
        assert_eq!(plan.base_max_boundary(), 1);
        let remove = NeighborEdit::Remove {
            relation: 0,
            tuple: vec![1],
        };
        let delta = plan.join_size_delta(&remove).unwrap();
        assert_eq!((delta.magnitude, delta.removal), (1, true));
        assert_eq!(plan.max_boundary_after(&remove).unwrap(), 1);
        let add = NeighborEdit::Add {
            relation: 0,
            tuple: vec![0],
        };
        assert_eq!(plan.join_size_delta(&add).unwrap().apply(3), 4);
    }

    #[test]
    fn invalid_edits_are_rejected_like_apply_edit() {
        let (q, inst) = two_table();
        let plan = plan_for(&q, &inst);
        // Out-of-range relation.
        let bad_rel = NeighborEdit::Add {
            relation: 5,
            tuple: vec![0, 0],
        };
        assert!(plan.join_size_delta(&bad_rel).is_err());
        // Arity mismatch.
        let bad_arity = NeighborEdit::Add {
            relation: 0,
            tuple: vec![0],
        };
        assert!(matches!(
            plan.max_boundary_after(&bad_arity),
            Err(RelationalError::ArityMismatch { .. })
        ));
        // Removing an absent tuple fails exactly like Instance::apply_edit.
        let absent = NeighborEdit::Remove {
            relation: 0,
            tuple: vec![7, 7],
        };
        assert!(inst.apply_edit(&absent).is_err());
        assert!(matches!(
            plan.max_boundary_after(&absent),
            Err(RelationalError::FrequencyUnderflow)
        ));
        // Out-of-range direction.
        let ok = NeighborEdit::Remove {
            relation: 0,
            tuple: vec![0, 0],
        };
        assert!(plan.boundary_after(9, &ok).is_err());
    }

    #[test]
    fn disconnected_subset_edits_cross_products() {
        // Path of length 3: the middle relation's removal leaves the two end
        // relations attribute-disjoint, so direction 1's sub-join is a cross
        // product — the delta path must agree with recomputation there too.
        let q = JoinQuery::path(3, 4).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        inst.relation_mut(0).add(vec![0, 1], 2).unwrap();
        inst.relation_mut(1).add(vec![1, 2], 3).unwrap();
        inst.relation_mut(2).add(vec![2, 3], 5).unwrap();
        inst.relation_mut(2).add(vec![2, 0], 1).unwrap();
        let plan = plan_for(&q, &inst);
        let base = join_size(&q, &inst).unwrap();
        let mut edits = inst.removal_edits();
        edits.push(NeighborEdit::Add {
            relation: 1,
            tuple: vec![1, 2],
        });
        edits.push(NeighborEdit::Add {
            relation: 0,
            tuple: vec![3, 1],
        });
        for edit in &edits {
            let neighbor = inst.apply_edit(edit).unwrap();
            assert_eq!(
                plan.join_size_delta(edit).unwrap().apply(base),
                join_size(&q, &neighbor).unwrap(),
                "edit {edit:?}"
            );
            assert_eq!(
                plan.max_boundary_after(edit).unwrap(),
                ls_oracle(&q, &neighbor),
                "edit {edit:?}"
            );
        }
    }
}
