//! Error type for the relational substrate.

use std::fmt;

/// Errors raised while constructing or evaluating relational objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// An attribute id refers outside the schema.
    UnknownAttribute {
        /// Offending attribute index.
        attr: u16,
        /// Number of attributes in the schema.
        schema_len: usize,
    },
    /// A tuple's arity does not match the relation's arity.
    ArityMismatch {
        /// Expected arity (number of attributes of the relation).
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A value lies outside its attribute's domain.
    ValueOutOfDomain {
        /// Attribute whose domain was violated.
        attr: u16,
        /// Offending value.
        value: u64,
        /// Domain size of the attribute.
        domain_size: u64,
    },
    /// A relation's attribute list is empty, unsorted, or contains duplicates.
    InvalidAttributeList(String),
    /// A join query was constructed with no relations.
    EmptyQuery,
    /// The number of relations in an instance does not match the query.
    RelationCountMismatch {
        /// Relations expected by the query.
        expected: usize,
        /// Relations present in the instance.
        got: usize,
    },
    /// The attribute list of a relation in an instance does not match the query.
    SchemaMismatch {
        /// Index of the offending relation.
        relation: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// The requested operation needs a hierarchical join query.
    NotHierarchical(String),
    /// A projection target is not a subset of the source attribute list.
    NotASubset {
        /// Human-readable detail.
        detail: String,
    },
    /// A subset of relation indices is out of range or empty when it must not be.
    InvalidRelationSubset(String),
    /// Frequency arithmetic would underflow below zero.
    FrequencyUnderflow,
    /// Frequency arithmetic would overflow the `u64` frequency type.
    FrequencyOverflow,
    /// A streaming update batch is malformed (bad relation index, arity or
    /// an insert/delete mix that no instance state could satisfy).
    InvalidUpdate(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownAttribute { attr, schema_len } => write!(
                f,
                "attribute id {attr} is out of range for a schema with {schema_len} attributes"
            ),
            RelationalError::ArityMismatch { expected, got } => {
                write!(f, "tuple arity mismatch: expected {expected}, got {got}")
            }
            RelationalError::ValueOutOfDomain {
                attr,
                value,
                domain_size,
            } => write!(
                f,
                "value {value} is outside the domain of attribute {attr} (domain size {domain_size})"
            ),
            RelationalError::InvalidAttributeList(msg) => {
                write!(f, "invalid attribute list: {msg}")
            }
            RelationalError::EmptyQuery => write!(f, "join query must contain at least one relation"),
            RelationalError::RelationCountMismatch { expected, got } => write!(
                f,
                "instance has {got} relations but the join query expects {expected}"
            ),
            RelationalError::SchemaMismatch { relation, detail } => {
                write!(f, "relation {relation} does not match the query schema: {detail}")
            }
            RelationalError::NotHierarchical(msg) => {
                write!(f, "join query is not hierarchical: {msg}")
            }
            RelationalError::NotASubset { detail } => write!(f, "not a subset: {detail}"),
            RelationalError::InvalidRelationSubset(msg) => {
                write!(f, "invalid relation subset: {msg}")
            }
            RelationalError::FrequencyUnderflow => {
                write!(f, "frequency update would drop a tuple's frequency below zero")
            }
            RelationalError::FrequencyOverflow => {
                write!(f, "frequency update would overflow the u64 frequency type")
            }
            RelationalError::InvalidUpdate(msg) => {
                write!(f, "invalid update batch: {msg}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationalError::ArityMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = RelationalError::ValueOutOfDomain {
            attr: 1,
            value: 9,
            domain_size: 4,
        };
        assert!(e.to_string().contains("domain size 4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&RelationalError::EmptyQuery);
    }
}
