//! Relational substrate for differentially private data release over
//! multiple tables.
//!
//! This crate implements the data model of Section 1.1 of the paper
//! *Differentially Private Data Release over Multiple Tables* (PODS 2023):
//!
//! * attributes with finite domains and schemas ([`attr`]),
//! * frequency-annotated relations `R_i : D_i → Z≥0` ([`relation`]),
//! * join queries as hypergraphs `H = (x, {x_1, …, x_m})` with boundaries,
//!   connectivity and the hierarchical-query test ([`hypergraph`]),
//! * multi-table instances and neighbouring-instance edits ([`instance`]),
//! * multi-way natural **hash-join** evaluation and grouped join sizes
//!   ([`join`](mod@join)), with the original `BTreeMap` engine retained as
//!   a cross-check oracle ([`naive`]),
//! * shared sub-join caching for relation-subset enumerations ([`cache`]),
//! * streaming insert/delete batches with in-place semi-naive maintenance
//!   of the cached lattice ([`stream`]),
//! * degree statistics `deg`, `Ψ_E` and maximum degrees `mdeg` ([`degree`]),
//! * attribute trees for hierarchical joins ([`tree`]),
//! * fractional edge covers and the AGM bound ([`cover`]),
//! * the compact tuple representation and fast hashing underneath it all
//!   ([`tuple`](mod@tuple), [`hash`]).
//!
//! Everything downstream (sensitivity computation, the PMW release algorithm
//! and the paper's join-as-one / uniformization algorithms) is built on these
//! primitives.
//!
//! # Conventions
//!
//! * Attribute lists are always kept sorted in increasing [`AttrId`] order and
//!   tuples store their values in that order.
//! * Relations map tuples to non-negative integer frequencies (annotated
//!   relations); a "plain" relation is simply one whose frequencies are all 1.
//!
//! # Determinism contract
//!
//! The join engine's internal maps are unordered hash maps keyed by the
//! compact [`TupleKey`] (inline, allocation-free for arity ≤ 4).  Hash order
//! is **never observable**: every API that exposes tuples — [`JoinResult::iter`],
//! [`JoinResult::group_by`], [`JoinResult::distinct_projections`],
//! [`Relation::degree_map`], [`degree::deg_multi`] — sorts on emit (or
//! returns an ordered map/set), so two runs over the same instance produce
//! byte-identical output and downstream seeded randomized algorithms are
//! reproducible from an RNG seed exactly as with the previous ordered-map
//! engine.  APIs whose results are order-free aggregates
//! ([`JoinResult::total`], [`JoinResult::max_group_weight`],
//! [`Relation::max_degree`]) skip the sort entirely.  The `*_key` /
//! `iter_unordered` escape hatches expose the raw hash containers for hot
//! paths that aggregate further; callers must not let their order escape.
//!
//! # Adaptive join planning
//!
//! [`SubJoinCache`] memoises sub-join results per subset bitmask so that
//! `2^m`-subset enumerations (residual sensitivity, multi-relation degree
//! statistics) perform one hash-join step per distinct subset instead of
//! re-joining from the base relations each time.  *How* each subset
//! decomposes into parent-plus-relation is owned by the cost-based join
//! planner ([`plan`]), which runs a **gather → estimate → populate →
//! measure → re-plan** lifecycle:
//!
//! 1. **Gather** — [`RelationStats::gather`] scans each relation once and
//!    summarises per-attribute distinct counts into mergeable
//!    [`DistinctSketch`]es (exact sets below a small threshold, promoting
//!    to a dense HyperLogLog-style register array above it).  Gathering is
//!    morsel-parallel under the stealing scheduler and the sketch merge is
//!    associative and commutative, so the statistics — and therefore every
//!    plan built from them — are identical at every worker count.
//! 2. **Estimate** — [`JoinPlan::cost_based`] picks, per subset, the pivot
//!    whose removal leaves the smallest estimated intermediate under the
//!    classical independence assumption, shrinking every cached
//!    intermediate relative to the historical fixed highest-index chain.
//! 3. **Populate / measure** — as the cache materialises intermediates
//!    ([`ShardedSubJoinCache::populate_proper_subsets_adaptive`], the
//!    adaptive lazy walks [`ShardedSubJoinCache::join_mask_adaptive`] and
//!    [`ShardedSubJoinCache::join_mask_transient_adaptive`]), each actual
//!    cardinality is compared against its estimate.
//! 4. **Re-plan** — when the worst estimate error exceeds
//!    [`PlanConfig::replan_ratio`] (default [`DEFAULT_REPLAN_RATIO`],
//!    overridable via the `DPSYN_REPLAN_RATIO` environment variable), the
//!    not-yet-materialised remainder is re-planned with every measured
//!    cardinality pinned as an exact anchor, routing later subsets around
//!    correlation traps that independence estimates cannot see.  Feedback
//!    counters surface as [`ReplanStats`] on [`PlanStats`].
//!
//! Re-planning never changes *values*: plans only choose decomposition
//! order, so adaptive output bytes are identical to the static planner and
//! the naive oracle at every thread count.  Streaming updates keep the
//! statistics warm instead of re-gathering: sketches absorb inserted
//! tuples incrementally, row counts are patched exactly, and deletions —
//! which insert-only sketches cannot subtract — leave the distinct
//! estimates as upper bounds (drift the re-plan feedback absorbs) until a
//! relation has lost enough rows to warrant a single-relation re-gather.
//!
//! **Materialize vs. aggregate.**  Sensitivity consumers read only
//! *aggregates* of most lattice entries — join sizes and per-boundary-key
//! maximum weights — so the cache additionally decides, per mask, whether
//! a sub-join is worth keeping as tuples at all.  Masks another mask
//! decomposes through ([`JoinPlan::is_chain_parent`]) and the full join
//! stay materialized; terminal masks whose only consumers are aggregate
//! reads are evaluated **count-only**: [`join::hash_join_step_agg`]
//! streams hash-probe matches straight into grouped saturating
//! accumulators (an [`AggSummary`]) without building a [`JoinResult`],
//! pre-filtering probe rows against a blocked Bloom filter built from the
//! build side's key hashes (no false negatives, so the surviving match
//! sequence is identical).  The decision is owned by
//! [`PlanConfig::agg_mode`] / [`AggMode`] (overridable via the
//! `DPSYN_AGG_FORCE` environment variable), recorded on
//! [`PlanNodeStats::aggregated`], and changes *how much work and memory*
//! the same numbers cost — never the numbers: every aggregate is
//! byte-identical to folding the materializing engine's output, which is
//! retained as the cross-check oracle ([`AggMode::Never`]).
//!
//! # Parallel execution
//!
//! The [`exec`] module provides a dependency-free scoped worker pool with a
//! [`Parallelism`] knob and a **morsel-driven, work-stealing scheduler**:
//! work is cut into fixed-size index morsels that workers claim dynamically
//! from a shared atomic counter ([`Schedule::Stealing`], the default; the
//! historical fixed stride survives as [`Schedule::Strided`] and per-worker
//! claim counts surface through [`SchedulerStats`]).  The join engine's
//! probe loops partition across the pool ([`join::hash_join_step_with`]) and
//! [`ShardedSubJoinCache`] populates each lattice level by stealing — with
//! outputs that are **byte-identical** to sequential execution at every
//! worker count, morsel size and schedule (morsel boundaries are pure
//! functions of the input length and results merge in morsel order; only
//! *claiming* order varies), so the determinism contract above is
//! unchanged.  Defaults come from [`Parallelism::available`] (the
//! `DPSYN_THREADS` environment variable — read once per process — or the
//! machine's core count); `Parallelism::SEQUENTIAL` is the exact
//! single-threaded code path.
//!
//! The probe loops themselves are **batched** ([`join::ProbeMode`]): probe
//! keys are projected and hashed a batch at a time before the chains are
//! walked.  On wide-valued attributes the engine can further run the whole
//! fold on **dictionary-encoded keys** ([`tuple::AttrDictionary`],
//! [`join::join_dict`], [`ExecContext::join_dict`]): values are replaced by
//! dense per-attribute codes (sorted ranks, so encoding is monotone), key
//! tuples that fit pack into a single `u64`, and results are decoded on
//! emit — byte-identical to the raw-value path.
//!
//! # Execution contexts
//!
//! [`ExecContext`] ([`context`]) bundles the parallelism knob with
//! **persistent, instance-fingerprinted caches**: a small LRU of per-instance
//! slots, each holding the sub-join lattice that survives across calls (so
//! repeated sensitivity enumerations over the same `(query, instance)` pair
//! reuse the `2^m` subset lattice instead of rebuilding it), a cached full
//! join for repeated query answering, the instance's [`DeltaJoinPlan`], and
//! the pair's cost-based [`JoinPlan`] shared by every checkout.  It backs
//! the facade crate's `dpsyn::Session`.  Cache reuse never changes output
//! bytes — see the [`context`] module docs for the contract.
//!
//! # Delta-join maintenance
//!
//! The [`delta`] module prices **single-tuple neighbour edits** (the
//! sensitivity sweeps of the paper) incrementally: a [`DeltaJoinPlan`]
//! precomputes grouped probe indexes from the sub-join lattice, after which
//! the join-size change and the post-edit boundary maxima of any edit cost a
//! hash probe instead of a full re-join — exactly equal to re-joining, at
//! every worker count.
//!
//! # Streaming updates
//!
//! The [`stream`] module generalises delta maintenance from priced
//! *hypothetical* edits to **applied write batches**: an [`UpdateBatch`] of
//! mixed inserts and deletes is folded into the live instance while the
//! cached `2^m` sub-join lattice (full join included) is updated *in place*,
//! semi-naive style — per relation, Δ-relations are joined against the
//! current intermediates and folded in, with deletes as weight retraction —
//! instead of rebuilt.  [`ExecContext::apply_updates`] migrates the warm LRU
//! slot across the [`instance_fingerprint`] transition so caches survive
//! writes, and the rebuild-from-scratch path remains the cross-check oracle:
//! maintained state is byte-identical to a cold rebuild at every thread
//! count, morsel size and schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod cache;
pub mod context;
pub mod cover;
pub mod degree;
pub mod delta;
pub mod error;
pub mod exec;
pub mod hash;
pub mod hypergraph;
pub mod instance;
pub mod join;
pub mod naive;
pub mod plan;
pub mod relation;
pub mod stream;
pub mod tree;
pub mod tuple;

pub use attr::{AttrId, Attribute, Schema};
pub use cache::{ShardedSubJoinCache, SubJoinCache};
pub use context::{
    instance_fingerprint, DictionaryState, EvictionStats, ExecContext, UpdateReport,
    DEFAULT_CACHE_SLOTS, DEFAULT_MIN_PAR_INSTANCE,
};
pub use cover::{agm_bound, fractional_edge_cover, fractional_edge_cover_number};
pub use degree::{deg_multi, deg_multi_cached, deg_single, max_degree, psi, psi_cached};
pub use delta::{DeltaJoinPlan, JoinSizeDelta};
pub use error::RelationalError;
pub use exec::{Parallelism, Schedule, SchedulerStats};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hypergraph::JoinQuery;
pub use instance::{Instance, NeighborEdit};
pub use join::{
    fold_fully_packable, fold_order, grouped_join_size, hash_join_step, hash_join_step_agg,
    hash_join_step_dict, hash_join_step_mode, hash_join_step_with, join, join_dict, join_encoded,
    join_size, join_subset, AggSummary, JoinResult, ProbeMode,
};
pub use plan::{
    AggMode, DistinctSketch, JoinPlan, PlanConfig, PlanNodeStats, PlanStats, RelationStats,
    ReplanStats, SharedJoinPlan, DEFAULT_REPLAN_RATIO, PLAN_MAX_RELATIONS,
};
pub use relation::Relation;
pub use stream::{apply_batch, UpdateBatch, UpdateOp, UpdateStats};
pub use tree::AttributeTree;
pub use tuple::{
    project, project_positions, AttrDictionary, KeyArena, KeyPacker, TupleKey, Value, INLINE_ARITY,
};

/// Result alias used throughout the relational crate.
pub type Result<T> = std::result::Result<T, RelationalError>;
