//! Relational substrate for differentially private data release over
//! multiple tables.
//!
//! This crate implements the data model of Section 1.1 of the paper
//! *Differentially Private Data Release over Multiple Tables* (PODS 2023):
//!
//! * attributes with finite domains and schemas ([`attr`]),
//! * frequency-annotated relations `R_i : D_i → Z≥0` ([`relation`]),
//! * join queries as hypergraphs `H = (x, {x_1, …, x_m})` with boundaries,
//!   connectivity and the hierarchical-query test ([`hypergraph`]),
//! * multi-table instances and neighbouring-instance edits ([`instance`]),
//! * multi-way natural join evaluation and grouped join sizes ([`join`]),
//! * degree statistics `deg`, `Ψ_E` and maximum degrees `mdeg` ([`degree`]),
//! * attribute trees for hierarchical joins ([`tree`]),
//! * fractional edge covers and the AGM bound ([`cover`]).
//!
//! Everything downstream (sensitivity computation, the PMW release algorithm
//! and the paper's join-as-one / uniformization algorithms) is built on these
//! primitives.
//!
//! # Conventions
//!
//! * Attribute lists are always kept sorted in increasing [`AttrId`] order and
//!   tuples store their values in that order.
//! * Relations map tuples to non-negative integer frequencies (annotated
//!   relations); a "plain" relation is simply one whose frequencies are all 1.
//! * All iteration uses ordered maps so that downstream randomized algorithms
//!   are reproducible from an RNG seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod cover;
pub mod degree;
pub mod error;
pub mod hypergraph;
pub mod instance;
pub mod join;
pub mod relation;
pub mod tree;
pub mod tuple;

pub use attr::{AttrId, Attribute, Schema};
pub use cover::{agm_bound, fractional_edge_cover, fractional_edge_cover_number};
pub use degree::{deg_multi, deg_single, max_degree, psi};
pub use error::RelationalError;
pub use hypergraph::JoinQuery;
pub use instance::{Instance, NeighborEdit};
pub use join::{grouped_join_size, join, join_size, join_subset, JoinResult};
pub use relation::Relation;
pub use tree::AttributeTree;
pub use tuple::{project, project_positions, Value};

/// Result alias used throughout the relational crate.
pub type Result<T> = std::result::Result<T, RelationalError>;
