//! Tuples and projections.
//!
//! A tuple over an attribute list `attrs` (sorted by [`AttrId`]) is stored as a
//! `Vec<Value>` whose `i`-th entry is the value of `attrs[i]`.  The paper
//! writes `π_y t` for the projection of tuple `t` onto attributes `y`; this
//! module provides that operation together with position pre-computation for
//! hot loops.

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::Result;

/// A single attribute value.  Domain elements are integers `0..domain_size`.
pub type Value = u64;

/// Maximum arity stored inline by [`TupleKey`] (no heap allocation).
///
/// `TupleKey` is used for hash-index and group-by keys, which range over
/// shared-attribute sets and grouping sets: arity ≤ 4 covers every query
/// shape in `dpsyn-datagen` (join keys of two-table/path/star/triangle
/// queries have arity 1–2, boundaries at most a handful).  Full result
/// tuples never pass through `TupleKey` — `JoinResult` stores them in a
/// flat row-major buffer — so wider keys (which spill to a boxed slice)
/// only arise in unusual ad-hoc projections.
pub const INLINE_ARITY: usize = 4;

/// A compact tuple key for the hash-join engine.
///
/// Tuples of arity ≤ [`INLINE_ARITY`] are stored inline (one enum word plus
/// four values, no heap allocation); wider tuples spill to a boxed slice.
/// `TupleKey` hashes, compares and orders exactly like its value slice, so a
/// map keyed by `TupleKey` can be probed with a borrowed `&[Value]` (via
/// [`std::borrow::Borrow`]) without materialising a key.
#[derive(Debug, Clone)]
pub enum TupleKey {
    /// Inline storage: `vals[..len]` are the tuple's values.
    Inline {
        /// Number of valid values.
        len: u8,
        /// Value storage (entries past `len` are zero and ignored).
        vals: [Value; INLINE_ARITY],
    },
    /// Heap storage for tuples wider than [`INLINE_ARITY`].
    Heap(Box<[Value]>),
}

impl TupleKey {
    /// Builds a key from a value slice.
    #[inline]
    pub fn from_slice(values: &[Value]) -> Self {
        if values.len() <= INLINE_ARITY {
            let mut vals = [0; INLINE_ARITY];
            vals[..values.len()].copy_from_slice(values);
            TupleKey::Inline {
                len: values.len() as u8,
                vals,
            }
        } else {
            TupleKey::Heap(values.into())
        }
    }

    /// Builds a key of length `len` whose `i`-th value is `f(i)`.
    ///
    /// This is the allocation-free construction used by the join engine's
    /// merge step (values are pulled from the two operand tuples in place).
    #[inline]
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> Value) -> Self {
        if len <= INLINE_ARITY {
            let mut vals = [0; INLINE_ARITY];
            for (i, slot) in vals[..len].iter_mut().enumerate() {
                *slot = f(i);
            }
            TupleKey::Inline {
                len: len as u8,
                vals,
            }
        } else {
            TupleKey::Heap((0..len).map(f).collect())
        }
    }

    /// Projects `tuple` onto pre-computed `positions`
    /// (see [`project_positions`]) without any intermediate allocation.
    #[inline]
    pub fn project(tuple: &[Value], positions: &[usize]) -> Self {
        TupleKey::from_fn(positions.len(), |i| tuple[positions[i]])
    }

    /// The key's values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match self {
            TupleKey::Inline { len, vals } => &vals[..*len as usize],
            TupleKey::Heap(vals) => vals,
        }
    }

    /// Number of values in the key.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            TupleKey::Inline { len, .. } => *len as usize,
            TupleKey::Heap(vals) => vals.len(),
        }
    }

    /// Whether the key is the empty tuple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the key into an owned `Vec`.
    #[inline]
    pub fn to_vec(&self) -> Vec<Value> {
        self.as_slice().to_vec()
    }
}

impl PartialEq for TupleKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TupleKey {}

impl PartialOrd for TupleKey {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TupleKey {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for TupleKey {
    /// Hashes exactly like the value slice, keeping the `Borrow<[Value]>`
    /// lookup contract: `hash(key) == hash(key.as_slice())`.
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::borrow::Borrow<[Value]> for TupleKey {
    #[inline]
    fn borrow(&self) -> &[Value] {
        self.as_slice()
    }
}

impl std::ops::Deref for TupleKey {
    type Target = [Value];

    #[inline]
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl From<&[Value]> for TupleKey {
    #[inline]
    fn from(values: &[Value]) -> Self {
        TupleKey::from_slice(values)
    }
}

impl From<Vec<Value>> for TupleKey {
    #[inline]
    fn from(values: Vec<Value>) -> Self {
        if values.len() <= INLINE_ARITY {
            TupleKey::from_slice(&values)
        } else {
            TupleKey::Heap(values.into_boxed_slice())
        }
    }
}

/// An arena for projected tuple keys: one flat `Vec<Value>` holding
/// fixed-width rows, filled in a build pass and then frozen.
///
/// The hash-join index build used to construct one [`TupleKey`] per build-side
/// row; for wide shared-attribute sets (arity > [`INLINE_ARITY`], e.g. the
/// Figure-4 query's projections) every such key spilled to its own boxed
/// slice.  `KeyArena` replaces that with a two-phase pattern that allocates
/// **zero** per-key boxes at any arity:
///
/// 1. project every row into the arena with [`KeyArena::push_projected`]
///    (one amortised `Vec` growth, no per-row allocation);
/// 2. freeze the arena (stop pushing) and build a map keyed by the borrowed
///    `&[Value]` rows via [`KeyArena::row`].
///
/// Borrowed rows stay valid because the map is built only after the fill
/// pass — the borrow checker enforces the freeze.  Probing such a map with a
/// scratch slice is already allocation-free (`&[Value]` keys, like
/// `TupleKey`, hash and compare as plain value slices).
#[derive(Debug, Clone)]
pub struct KeyArena {
    width: usize,
    rows: usize,
    data: Vec<Value>,
}

impl KeyArena {
    /// Creates an arena for keys of exactly `width` values (`width = 0` is
    /// allowed: every row is then the empty tuple, as in cross products).
    pub fn new(width: usize) -> Self {
        KeyArena {
            width,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// Creates an arena with capacity reserved for `rows` keys up front.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        KeyArena {
            width,
            rows: 0,
            data: Vec::with_capacity(width * rows),
        }
    }

    /// Appends the projection of `tuple` onto pre-computed `positions`
    /// (see [`project_positions`]) as the next row.  `positions` must have
    /// the arena's width.
    #[inline]
    pub fn push_projected(&mut self, tuple: &[Value], positions: &[usize]) {
        debug_assert_eq!(positions.len(), self.width, "projection width mismatch");
        self.data.extend(positions.iter().map(|&p| tuple[p]));
        self.rows += 1;
    }

    /// The `i`-th row as a borrowed slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.data[i * self.width..i * self.width + self.width]
    }

    /// Number of rows pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the arena holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Drops all rows but keeps the allocation, so the arena can be reused
    /// as a per-batch scratch buffer in the batched probe loop.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }
}

/// A per-instance **attribute dictionary**: for every schema attribute, the
/// sorted list of values that actually occur in the instance, so each value
/// can be replaced by its dense rank (`u32`-sized code).
///
/// Wide attribute values — sparse identifiers drawn from huge domains — make
/// tuple keys expensive: multi-word hashing and multi-word equality on every
/// probe.  Encoding the instance through the dictionary shrinks every value
/// to its dense code, after which multi-attribute join keys usually fit a
/// single `u64` (see [`AttrDictionary::packer`]) and key equality/hash is
/// one integer compare.
///
/// **Order preservation.**  Codes are assigned in ascending value order
/// (`code(v) < code(w) ⟺ v < w` for values of the same attribute), so
/// encoding is monotone per attribute and the lexicographic order of whole
/// tuples is preserved.  Every sorted-on-emit surface of the engine
/// therefore emits encoded tuples in exactly the order of their raw
/// counterparts, and decoding on emit reproduces raw output **byte for
/// byte** — the dictionary is invisible downstream.
///
/// The dictionary is a snapshot of one instance: values not present when it
/// was built have no code, and [`AttrDictionary::encode_instance`] fails on
/// them.  `ExecContext` caches one dictionary per instance fingerprint, so
/// an edited instance gets a fresh dictionary rather than a stale one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDictionary {
    /// Per schema attribute (indexed by `AttrId::index`): the sorted
    /// distinct values of that attribute across all relations that mention
    /// it.  A value's code is its position in this table.
    tables: Vec<Vec<Value>>,
}

impl AttrDictionary {
    /// Builds the dictionary for `(query, instance)`: one pass over every
    /// relation, collecting each attribute's distinct values, then sorting.
    /// The result depends only on the instance contents — never on hash or
    /// scheduling order.
    pub fn build(
        query: &crate::hypergraph::JoinQuery,
        instance: &crate::instance::Instance,
    ) -> Self {
        let mut tables: Vec<Vec<Value>> = vec![Vec::new(); query.schema().attr_count()];
        for rel in instance.relations() {
            let attrs = rel.attrs();
            for (tuple, _) in rel.iter() {
                for (pos, attr) in attrs.iter().enumerate() {
                    tables[attr.index()].push(tuple[pos]);
                }
            }
        }
        for table in &mut tables {
            table.sort_unstable();
            table.dedup();
        }
        AttrDictionary { tables }
    }

    /// Number of distinct values (codes) of `attr` in the instance.
    pub fn code_count(&self, attr: AttrId) -> usize {
        self.tables.get(attr.index()).map_or(0, Vec::len)
    }

    /// Per-attribute code counts, indexed by [`AttrId::index`].
    pub fn code_counts(&self) -> Vec<usize> {
        self.tables.iter().map(Vec::len).collect()
    }

    /// The dense code of `value` for `attr`, if the value occurred in the
    /// instance the dictionary was built from.
    #[inline]
    pub fn code(&self, attr: AttrId, value: Value) -> Option<u32> {
        self.tables
            .get(attr.index())?
            .binary_search(&value)
            .ok()
            .map(|c| c as u32)
    }

    /// The raw value behind `code` for `attr`.  Panics if the code is out
    /// of range — encoded data only ever contains codes this dictionary
    /// issued, so an out-of-range code is a logic error, not bad input.
    #[inline]
    pub fn decode(&self, attr: AttrId, code: Value) -> Value {
        self.tables[attr.index()][code as usize]
    }

    /// Bits needed to store any code of `attr` (at least 1).
    fn code_bits(&self, attr: AttrId) -> u32 {
        let max_code = self.code_count(attr).saturating_sub(1) as u64;
        (u64::BITS - max_code.leading_zeros()).max(1)
    }

    /// A packer squeezing a key over `attrs` (sorted) into a single `u64`,
    /// if the attributes' summed code widths fit 64 bits.  Keys packed by
    /// the same packer are equal iff the underlying code tuples are equal.
    pub fn packer(&self, attrs: &[AttrId]) -> Option<KeyPacker> {
        let bits: Vec<u32> = attrs.iter().map(|&a| self.code_bits(a)).collect();
        KeyPacker::new(bits)
    }

    /// Encodes `(query, instance)` through the dictionary: every value is
    /// replaced by its dense code and every attribute's domain shrinks to
    /// its code count.  Relation iteration order (sorted by tuple) maps
    /// 1:1 because encoding is monotone per attribute.
    ///
    /// Fails with [`RelationalError::ValueOutOfDomain`] if the instance
    /// contains a value the dictionary has never seen (i.e. the dictionary
    /// was built from a different instance).
    pub fn encode_instance(
        &self,
        query: &crate::hypergraph::JoinQuery,
        instance: &crate::instance::Instance,
    ) -> Result<(crate::hypergraph::JoinQuery, crate::instance::Instance)> {
        use crate::attr::{Attribute, Schema};

        let schema = query.schema();
        let enc_attrs: Vec<Attribute> = (0..schema.attr_count() as u16)
            .map(|i| {
                let attr = schema.attr(AttrId(i)).expect("index in range");
                Attribute::new(attr.name.clone(), self.code_count(AttrId(i)).max(1) as u64)
            })
            .collect();
        let enc_query =
            crate::hypergraph::JoinQuery::new(Schema::new(enc_attrs), query.relations().to_vec())?;

        let mut enc_relations = Vec::with_capacity(instance.num_relations());
        for rel in instance.relations() {
            let attrs = rel.attrs();
            let mut enc = crate::relation::Relation::new(attrs.to_vec())?;
            for (tuple, freq) in rel.iter() {
                let mut enc_tuple = Vec::with_capacity(tuple.len());
                for (pos, &attr) in attrs.iter().enumerate() {
                    let code =
                        self.code(attr, tuple[pos])
                            .ok_or(RelationalError::ValueOutOfDomain {
                                attr: attr.0,
                                value: tuple[pos],
                                domain_size: self.code_count(attr) as u64,
                            })?;
                    enc_tuple.push(code as Value);
                }
                enc.add(enc_tuple, freq)?;
            }
            enc_relations.push(enc);
        }
        Ok((enc_query, crate::instance::Instance::new(enc_relations)))
    }
}

/// Packs a fixed-width code tuple into one `u64` by bit concatenation.
///
/// Built by [`AttrDictionary::packer`] from per-attribute code widths; only
/// exists when the widths sum to ≤ 64 bits, so packing is always injective
/// and two packed keys are equal iff their code tuples are.  The packed
/// word is an internal probe key only — it never appears in emitted output
/// (results are decoded value-by-value), so its exact layout is free to
/// favor speed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPacker {
    bits: Vec<u32>,
}

impl KeyPacker {
    /// A packer for fields of the given bit widths, if they fit 64 bits.
    pub fn new(bits: Vec<u32>) -> Option<Self> {
        let total: u32 = bits.iter().sum();
        (total <= u64::BITS && bits.iter().all(|&b| b >= 1)).then_some(KeyPacker { bits })
    }

    /// Number of fields per key.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Packs `vals` (one per field, each `< 2^bits`) into a single word.
    #[inline]
    pub fn pack(&self, vals: &[Value]) -> u64 {
        debug_assert_eq!(vals.len(), self.bits.len(), "packed key width mismatch");
        let mut out: u64 = 0;
        for (&v, &b) in vals.iter().zip(self.bits.iter()) {
            debug_assert!(
                b == u64::BITS || v < (1u64 << b),
                "value exceeds field width"
            );
            // b = 64 only as the sole field (widths sum to ≤ 64), where out
            // is still 0; a plain shift would overflow-panic in debug.
            out = if b == u64::BITS { v } else { (out << b) | v };
        }
        out
    }

    /// Packs the projection of `tuple` onto pre-computed `positions`
    /// without materialising the projected slice.
    #[inline]
    pub fn pack_projected(&self, tuple: &[Value], positions: &[usize]) -> u64 {
        debug_assert_eq!(
            positions.len(),
            self.bits.len(),
            "packed key width mismatch"
        );
        let mut out: u64 = 0;
        for (&p, &b) in positions.iter().zip(self.bits.iter()) {
            let v = tuple[p];
            debug_assert!(
                b == u64::BITS || v < (1u64 << b),
                "value exceeds field width"
            );
            out = if b == u64::BITS { v } else { (out << b) | v };
        }
        out
    }
}

/// Computes, for each attribute in `onto`, its position inside `attrs`.
///
/// Both lists must be sorted; `onto` must be a subset of `attrs`.
/// The returned positions can be reused to project many tuples cheaply.
pub fn project_positions(attrs: &[AttrId], onto: &[AttrId]) -> Result<Vec<usize>> {
    let mut positions = Vec::with_capacity(onto.len());
    for target in onto {
        match attrs.binary_search(target) {
            Ok(pos) => positions.push(pos),
            Err(_) => {
                return Err(RelationalError::NotASubset {
                    detail: format!("attribute {target} is not part of the source attribute list"),
                })
            }
        }
    }
    Ok(positions)
}

/// Projects `tuple` (over `attrs`) onto the attribute subset `onto`:
/// the paper's `π_onto tuple`.
pub fn project(tuple: &[Value], attrs: &[AttrId], onto: &[AttrId]) -> Result<Vec<Value>> {
    let positions = project_positions(attrs, onto)?;
    Ok(project_with_positions(tuple, &positions))
}

/// Projects using pre-computed positions (see [`project_positions`]).
#[inline]
pub fn project_with_positions(tuple: &[Value], positions: &[usize]) -> Vec<Value> {
    positions.iter().map(|&p| tuple[p]).collect()
}

/// Projects `tuple` onto `positions` into a reusable scratch buffer,
/// clearing it first.  Hot loops call this with one buffer per loop so that
/// probing a hash index allocates nothing (the buffer's slice is used as the
/// lookup key via `Borrow<[Value]>`).
#[inline]
pub fn project_into(tuple: &[Value], positions: &[usize], scratch: &mut Vec<Value>) {
    scratch.clear();
    scratch.extend(positions.iter().map(|&p| tuple[p]));
}

/// Merges two attribute lists (each sorted, duplicate-free) into their sorted
/// union, returning the union.
pub fn union_attrs(a: &[AttrId], b: &[AttrId]) -> Vec<AttrId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersection of two sorted attribute lists.
pub fn intersect_attrs(a: &[AttrId], b: &[AttrId]) -> Vec<AttrId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Set difference `a \ b` of two sorted attribute lists.
pub fn diff_attrs(a: &[AttrId], b: &[AttrId]) -> Vec<AttrId> {
    let mut out = Vec::new();
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// Merges a tuple over `a_attrs` with a tuple over `b_attrs` into a tuple over
/// their sorted union.  Where both sides define a value for an attribute the
/// values must agree (the caller is expected to have checked join
/// compatibility); the left value is used.
pub fn merge_tuples(
    a_tuple: &[Value],
    a_attrs: &[AttrId],
    b_tuple: &[Value],
    b_attrs: &[AttrId],
) -> (Vec<AttrId>, Vec<Value>) {
    let attrs = union_attrs(a_attrs, b_attrs);
    let mut values = Vec::with_capacity(attrs.len());
    for attr in &attrs {
        if let Ok(pos) = a_attrs.binary_search(attr) {
            values.push(a_tuple[pos]);
        } else {
            let pos = b_attrs
                .binary_search(attr)
                .expect("attribute must come from one of the operands");
            values.push(b_tuple[pos]);
        }
    }
    (attrs, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    #[test]
    fn projection_basic() {
        let attrs = ids(&[0, 2, 5]);
        let t = vec![10, 20, 50];
        assert_eq!(project(&t, &attrs, &ids(&[0, 5])).unwrap(), vec![10, 50]);
        assert_eq!(project(&t, &attrs, &ids(&[2])).unwrap(), vec![20]);
        assert_eq!(project(&t, &attrs, &[]).unwrap(), Vec::<Value>::new());
        assert!(project(&t, &attrs, &ids(&[1])).is_err());
    }

    #[test]
    fn set_operations() {
        let a = ids(&[0, 1, 3, 5]);
        let b = ids(&[1, 2, 5, 7]);
        assert_eq!(union_attrs(&a, &b), ids(&[0, 1, 2, 3, 5, 7]));
        assert_eq!(intersect_attrs(&a, &b), ids(&[1, 5]));
        assert_eq!(diff_attrs(&a, &b), ids(&[0, 3]));
        assert_eq!(diff_attrs(&b, &a), ids(&[2, 7]));
        assert_eq!(union_attrs(&[], &b), b);
        assert_eq!(intersect_attrs(&a, &[]), vec![]);
    }

    #[test]
    fn merge_preserves_sorted_union() {
        let a_attrs = ids(&[0, 2]);
        let b_attrs = ids(&[2, 4]);
        let (attrs, vals) = merge_tuples(&[7, 9], &a_attrs, &[9, 11], &b_attrs);
        assert_eq!(attrs, ids(&[0, 2, 4]));
        assert_eq!(vals, vec![7, 9, 11]);
    }

    #[test]
    fn project_positions_reusable() {
        let attrs = ids(&[1, 4, 6, 9]);
        let pos = project_positions(&attrs, &ids(&[4, 9])).unwrap();
        assert_eq!(pos, vec![1, 3]);
        assert_eq!(project_with_positions(&[5, 6, 7, 8], &pos), vec![6, 8]);
        let mut scratch = Vec::new();
        project_into(&[5, 6, 7, 8], &pos, &mut scratch);
        assert_eq!(scratch, vec![6, 8]);
        project_into(&[5, 6, 7, 8], &[0], &mut scratch);
        assert_eq!(scratch, vec![5]);
    }

    #[test]
    fn tuple_key_inline_and_heap_agree_with_slices() {
        use std::hash::BuildHasher;

        for len in 0..=6usize {
            let values: Vec<Value> = (0..len as u64).map(|v| v * 7 + 1).collect();
            let key = TupleKey::from_slice(&values);
            assert_eq!(key.as_slice(), values.as_slice());
            assert_eq!(key.len(), len);
            assert_eq!(key.is_empty(), len == 0);
            assert_eq!(key.to_vec(), values);
            assert!(
                matches!(
                    key,
                    TupleKey::Inline { .. } if len <= INLINE_ARITY,
                ) || len > INLINE_ARITY
            );

            // Hash must match the slice hash (Borrow-based map probing).
            let build = crate::hash::FxBuildHasher::default();
            assert_eq!(build.hash_one(&key), build.hash_one(values.as_slice()));
        }
    }

    #[test]
    fn tuple_key_orders_like_slices() {
        let a = TupleKey::from_slice(&[1, 2]);
        let b = TupleKey::from_slice(&[1, 3]);
        let c = TupleKey::from_slice(&[1, 2, 0]);
        assert!(a < b);
        assert!(a < c);
        assert_eq!(a, TupleKey::from(vec![1, 2]));
        assert_ne!(a, b);
    }

    #[test]
    fn tuple_key_from_fn_and_project() {
        let key = TupleKey::from_fn(3, |i| (i as Value) * 10);
        assert_eq!(key.as_slice(), &[0, 10, 20]);
        let wide = TupleKey::from_fn(6, |i| i as Value);
        assert_eq!(wide.as_slice(), &[0, 1, 2, 3, 4, 5]);
        let projected = TupleKey::project(&[9, 8, 7, 6], &[3, 0]);
        assert_eq!(projected.as_slice(), &[6, 9]);
    }

    #[test]
    fn key_arena_rows_round_trip() {
        let mut arena = KeyArena::with_capacity(2, 3);
        assert!(arena.is_empty());
        arena.push_projected(&[9, 8, 7], &[2, 0]);
        arena.push_projected(&[1, 2, 3], &[0, 1]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.row(0), &[7, 9]);
        assert_eq!(arena.row(1), &[1, 2]);

        // Frozen arena rows work as borrowed hash-map keys (the join engine's
        // zero-allocation index-build pattern).
        let mut map: crate::hash::FxHashMap<&[Value], u64> = crate::hash::FxHashMap::default();
        for i in 0..arena.len() {
            *map.entry(arena.row(i)).or_insert(0) += 1;
        }
        assert_eq!(map.get(&[7u64, 9][..]).copied(), Some(1));

        // Width-0 arenas count rows (cross-product indexes group under the
        // empty key).
        let mut empty = KeyArena::new(0);
        empty.push_projected(&[5], &[]);
        empty.push_projected(&[6], &[]);
        assert_eq!(empty.len(), 2);
        assert_eq!(empty.row(1), &[] as &[Value]);
    }

    #[test]
    fn key_arena_clear_keeps_width_and_reuses() {
        let mut arena = KeyArena::with_capacity(2, 4);
        arena.push_projected(&[1, 2, 3], &[0, 2]);
        assert_eq!(arena.len(), 1);
        arena.clear();
        assert!(arena.is_empty());
        arena.push_projected(&[4, 5, 6], &[1, 2]);
        assert_eq!(arena.row(0), &[5, 6]);
    }

    fn wide_value_pair() -> (crate::hypergraph::JoinQuery, crate::instance::Instance) {
        use crate::attr::{Attribute, Schema};
        // Two relations sharing attribute 1; values are sparse in a huge
        // domain (the "wide attribute" case the dictionary exists for).
        let schema = Schema::new(vec![
            Attribute::new("A", 1 << 40),
            Attribute::new("B", 1 << 40),
            Attribute::new("C", 1 << 40),
        ]);
        let q =
            crate::hypergraph::JoinQuery::new(schema, vec![ids(&[0, 1]), ids(&[1, 2])]).unwrap();
        let r1 = crate::relation::Relation::from_tuples(
            ids(&[0, 1]),
            vec![
                (vec![1 << 30, 5_000_000_000], 2),
                (vec![77, 9_999_999_999], 1),
            ],
        )
        .unwrap();
        let r2 = crate::relation::Relation::from_tuples(
            ids(&[1, 2]),
            vec![
                (vec![5_000_000_000, 3], 1),
                (vec![9_999_999_999, 1 << 35], 4),
            ],
        )
        .unwrap();
        (q, crate::instance::Instance::new(vec![r1, r2]))
    }

    #[test]
    fn dictionary_codes_are_dense_sorted_and_monotone() {
        let (q, inst) = wide_value_pair();
        let dict = AttrDictionary::build(&q, &inst);
        assert_eq!(dict.code_counts(), vec![2, 2, 2]);
        // Codes are ranks in ascending value order.
        assert_eq!(dict.code(AttrId(0), 77), Some(0));
        assert_eq!(dict.code(AttrId(0), 1 << 30), Some(1));
        assert_eq!(dict.code(AttrId(1), 5_000_000_000), Some(0));
        assert_eq!(dict.code(AttrId(1), 9_999_999_999), Some(1));
        assert_eq!(dict.code(AttrId(1), 42), None);
        // Decode inverts.
        assert_eq!(dict.decode(AttrId(1), 1), 9_999_999_999);
        // Monotone: value order and code order agree.
        assert!(dict.code(AttrId(2), 3).unwrap() < dict.code(AttrId(2), 1 << 35).unwrap());
    }

    #[test]
    fn encode_instance_round_trips_and_shrinks_domains() {
        let (q, inst) = wide_value_pair();
        let dict = AttrDictionary::build(&q, &inst);
        let (enc_q, enc_inst) = dict.encode_instance(&q, &inst).unwrap();
        assert_eq!(enc_q.schema().domain_size(AttrId(0)).unwrap(), 2);
        assert!(enc_inst.validate(&enc_q).is_ok());
        // Frequencies and tuple counts are preserved.
        assert_eq!(enc_inst.input_size(), inst.input_size());
        // Encoded relation iterates in the same order as the raw relation
        // (monotone encoding preserves lexicographic tuple order), and
        // decoding each value reproduces the raw tuple stream exactly.
        for (rel, enc_rel) in inst.relations().iter().zip(enc_inst.relations()) {
            let attrs = rel.attrs();
            for ((raw, rf), (enc, ef)) in rel.iter().zip(enc_rel.iter()) {
                assert_eq!(rf, ef);
                let decoded: Vec<Value> = enc
                    .iter()
                    .enumerate()
                    .map(|(pos, &code)| dict.decode(attrs[pos], code))
                    .collect();
                assert_eq!(&decoded, raw);
            }
        }
        // A foreign instance with unseen values fails to encode.
        let mut other = inst.clone();
        other
            .relation_mut(0)
            .add_one(vec![123_456, 654_321])
            .unwrap();
        assert!(dict.encode_instance(&q, &other).is_err());
    }

    #[test]
    fn key_packer_is_injective_and_respects_widths() {
        let (q, inst) = wide_value_pair();
        let dict = AttrDictionary::build(&q, &inst);
        // 2 codes per attr → 1 bit each; a 3-attr key packs into 3 bits.
        let packer = dict.packer(&ids(&[0, 1, 2])).unwrap();
        assert_eq!(packer.width(), 3);
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..2u64 {
            for b in 0..2u64 {
                for c in 0..2u64 {
                    assert!(
                        seen.insert(packer.pack(&[a, b, c])),
                        "packing must be injective"
                    );
                }
            }
        }
        // pack_projected agrees with pack on the projected slice.
        let tuple = [1u64, 0, 1, 0];
        assert_eq!(
            packer.pack_projected(&tuple, &[0, 2, 3]),
            packer.pack(&[1, 1, 0])
        );
        // Oversized widths refuse to build.
        assert!(KeyPacker::new(vec![33, 32]).is_none());
        assert!(KeyPacker::new(vec![64]).is_some());
        assert!(KeyPacker::new(vec![0, 4]).is_none());
        // A single 64-bit field packs without overflow.
        let wide = KeyPacker::new(vec![64]).unwrap();
        assert_eq!(wide.pack(&[u64::MAX]), u64::MAX);
    }

    #[test]
    fn tuple_key_borrow_lookup() {
        let mut map: crate::hash::FxHashMap<TupleKey, u64> = crate::hash::FxHashMap::default();
        map.insert(TupleKey::from_slice(&[4, 5]), 99);
        assert_eq!(map.get(&[4u64, 5][..]).copied(), Some(99));
        assert_eq!(map.get(&[4u64, 6][..]).copied(), None);
    }
}
