//! Tuples and projections.
//!
//! A tuple over an attribute list `attrs` (sorted by [`AttrId`]) is stored as a
//! `Vec<Value>` whose `i`-th entry is the value of `attrs[i]`.  The paper
//! writes `π_y t` for the projection of tuple `t` onto attributes `y`; this
//! module provides that operation together with position pre-computation for
//! hot loops.

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::Result;

/// A single attribute value.  Domain elements are integers `0..domain_size`.
pub type Value = u64;

/// Computes, for each attribute in `onto`, its position inside `attrs`.
///
/// Both lists must be sorted; `onto` must be a subset of `attrs`.
/// The returned positions can be reused to project many tuples cheaply.
pub fn project_positions(attrs: &[AttrId], onto: &[AttrId]) -> Result<Vec<usize>> {
    let mut positions = Vec::with_capacity(onto.len());
    for target in onto {
        match attrs.binary_search(target) {
            Ok(pos) => positions.push(pos),
            Err(_) => {
                return Err(RelationalError::NotASubset {
                    detail: format!("attribute {target} is not part of the source attribute list"),
                })
            }
        }
    }
    Ok(positions)
}

/// Projects `tuple` (over `attrs`) onto the attribute subset `onto`:
/// the paper's `π_onto tuple`.
pub fn project(tuple: &[Value], attrs: &[AttrId], onto: &[AttrId]) -> Result<Vec<Value>> {
    let positions = project_positions(attrs, onto)?;
    Ok(project_with_positions(tuple, &positions))
}

/// Projects using pre-computed positions (see [`project_positions`]).
#[inline]
pub fn project_with_positions(tuple: &[Value], positions: &[usize]) -> Vec<Value> {
    positions.iter().map(|&p| tuple[p]).collect()
}

/// Merges two attribute lists (each sorted, duplicate-free) into their sorted
/// union, returning the union.
pub fn union_attrs(a: &[AttrId], b: &[AttrId]) -> Vec<AttrId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersection of two sorted attribute lists.
pub fn intersect_attrs(a: &[AttrId], b: &[AttrId]) -> Vec<AttrId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Set difference `a \ b` of two sorted attribute lists.
pub fn diff_attrs(a: &[AttrId], b: &[AttrId]) -> Vec<AttrId> {
    let mut out = Vec::new();
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// Merges a tuple over `a_attrs` with a tuple over `b_attrs` into a tuple over
/// their sorted union.  Where both sides define a value for an attribute the
/// values must agree (the caller is expected to have checked join
/// compatibility); the left value is used.
pub fn merge_tuples(
    a_tuple: &[Value],
    a_attrs: &[AttrId],
    b_tuple: &[Value],
    b_attrs: &[AttrId],
) -> (Vec<AttrId>, Vec<Value>) {
    let attrs = union_attrs(a_attrs, b_attrs);
    let mut values = Vec::with_capacity(attrs.len());
    for attr in &attrs {
        if let Ok(pos) = a_attrs.binary_search(attr) {
            values.push(a_tuple[pos]);
        } else {
            let pos = b_attrs
                .binary_search(attr)
                .expect("attribute must come from one of the operands");
            values.push(b_tuple[pos]);
        }
    }
    (attrs, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    #[test]
    fn projection_basic() {
        let attrs = ids(&[0, 2, 5]);
        let t = vec![10, 20, 50];
        assert_eq!(project(&t, &attrs, &ids(&[0, 5])).unwrap(), vec![10, 50]);
        assert_eq!(project(&t, &attrs, &ids(&[2])).unwrap(), vec![20]);
        assert_eq!(project(&t, &attrs, &[]).unwrap(), Vec::<Value>::new());
        assert!(project(&t, &attrs, &ids(&[1])).is_err());
    }

    #[test]
    fn set_operations() {
        let a = ids(&[0, 1, 3, 5]);
        let b = ids(&[1, 2, 5, 7]);
        assert_eq!(union_attrs(&a, &b), ids(&[0, 1, 2, 3, 5, 7]));
        assert_eq!(intersect_attrs(&a, &b), ids(&[1, 5]));
        assert_eq!(diff_attrs(&a, &b), ids(&[0, 3]));
        assert_eq!(diff_attrs(&b, &a), ids(&[2, 7]));
        assert_eq!(union_attrs(&[], &b), b);
        assert_eq!(intersect_attrs(&a, &[]), vec![]);
    }

    #[test]
    fn merge_preserves_sorted_union() {
        let a_attrs = ids(&[0, 2]);
        let b_attrs = ids(&[2, 4]);
        let (attrs, vals) = merge_tuples(&[7, 9], &a_attrs, &[9, 11], &b_attrs);
        assert_eq!(attrs, ids(&[0, 2, 4]));
        assert_eq!(vals, vec![7, 9, 11]);
    }

    #[test]
    fn project_positions_reusable() {
        let attrs = ids(&[1, 4, 6, 9]);
        let pos = project_positions(&attrs, &ids(&[4, 9])).unwrap();
        assert_eq!(pos, vec![1, 3]);
        assert_eq!(project_with_positions(&[5, 6, 7, 8], &pos), vec![6, 8]);
    }
}
