//! Cost-based join planning: boundary-aware decomposition of the sub-join
//! lattice, with sketch-based statistics and runtime-feedback re-planning.
//!
//! Every sub-join the engine materialises — the `2^m` subset lattice behind
//! residual sensitivity, the size-`(m-1)` joins of local sensitivity, the
//! size-`(m-2)` probe indexes of [`crate::delta`] — is computed by peeling
//! one relation off a subset and joining it against the memoised rest (see
//! [`crate::cache`]).  *Which* relation gets peeled fixes the decomposition
//! chain, and with it the set (and size) of intermediate results the cache
//! keeps resident.  The historical choice — always drop the highest relation
//! index — is oblivious to the data: on a path query it happily routes the
//! chain of `{0, 1, 3}` through the cross product `{0, 3}` when the linear
//! `{0, 1}` was one bit away.
//!
//! A [`JoinPlan`] replaces that fixed rule with a **cost-based decomposition
//! DAG** in the spirit of Selinger-style optimizers, shrunk to the lattice
//! setting.  The lifecycle is gather → estimate → populate → measure →
//! re-plan:
//!
//! 1. **Gather.** [`RelationStats::gather`] sweeps each relation once and
//!    summarises every attribute with a [`DistinctSketch`] — a hand-rolled
//!    mergeable HyperLogLog-style sketch (exact below
//!    [`DistinctSketch::EXACT_LIMIT`] values, `2^12` one-byte registers
//!    above it).  Sketch merging is associative, commutative and
//!    idempotent, so the gather splits relations into morsels for the
//!    stealing scheduler and merges partial sketches back in relation
//!    order: the statistics — and therefore the plan — are identical at
//!    every thread count.
//! 2. **Estimate.** Textbook independence estimates built from the sketches
//!    price every subset's join cardinality bottom-up over the lattice, and
//!    each subset's parent is chosen to minimise the estimated intermediate
//!    it must materialise.
//! 3. **Populate / measure.** As the cache materialises subsets
//!    ([`crate::ShardedSubJoinCache::populate_proper_subsets`]), each
//!    actual cardinality is compared against its estimate.
//! 4. **Re-plan.** When the error factor `max(actual/est, est/actual)`
//!    exceeds [`PlanConfig::replan_ratio`], the not-yet-materialised
//!    remainder of the lattice is re-planned with the measured
//!    cardinalities as exact anchors ([`JoinPlan::replanned`]); the
//!    feedback loop is summarised in [`ReplanStats`].
//!
//! On streaming updates, [`crate::ExecContext::apply_updates`] patches the
//! sketches incrementally from the update batch's net per-relation deltas
//! and rebuilds the plan from the patched statistics — no full statistics
//! pass per batch.  Sketches are insert-only, so net removals leave the
//! distinct estimates as upper bounds (bounded drift the re-plan feedback
//! absorbs); a relation that has lost a sizeable share of its rows is
//! re-gathered from scratch.
//!
//! ### Where the plan lives
//!
//! Plans are built **once per instance fingerprint** by
//! [`crate::ExecContext::join_plan`] and stored in the context's LRU slot
//! alongside the lattice, the shared full join and the delta plan; every
//! checkout of the sub-join cache carries the same `Arc`, so parallel and
//! sequential consumers observe the identical decomposition.  Bare caches
//! ([`crate::SubJoinCache::new`], [`crate::ShardedSubJoinCache::new`])
//! default to [`JoinPlan::fixed_prefix`] — the exact historical chain — and
//! accept a planner-built plan through their `with_plan` constructors.
//!
//! ### Determinism contract
//!
//! The decomposition never changes values, only the order in which binary
//! join steps combine relations: a sub-join result is the same weighted
//! tuple set under every decomposition (joins are commutative and
//! associative; the engine's weights saturate identically outside
//! astronomically large joins), and every consumer of the lattice reads it
//! through order-free aggregates or sorted emits.  The plan itself is a
//! pure function of the query and the instance statistics — no randomness,
//! no thread-count dependence — and re-planning decisions compare
//! thread-count-invariant actual cardinalities against
//! thread-count-invariant estimates at level barriers, so warm, cold,
//! sequential, parallel, static and adaptive callers all produce
//! byte-identical outputs (adaptive ≡ static ≡ naive is property-tested).

use std::hash::Hasher;
use std::sync::Arc;

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::exec::{self, Parallelism};
use crate::hash::{FxHashMap, FxHashSet, FxHasher};
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::join::fold_order;
use crate::tuple::Value;
use crate::Result;

/// Largest relation count for which the planner enumerates the full `2^m`
/// decomposition table (beyond it, [`JoinPlan::cost_based`] falls back to
/// the fixed-prefix chain — the table alone would dwarf the joins).
pub const PLAN_MAX_RELATIONS: usize = 16;

/// Rows per statistics-gather morsel: relations larger than this are split
/// into independent chunks for the worker pool, whose partial sketches are
/// merged back in morsel order (the merge is order-independent anyway).
const GATHER_MORSEL_ROWS: usize = 1 << 16;

/// Register-index bits of the HyperLogLog representation (`2^12 = 4096`
/// registers, ~1.6 % standard relative error).
const SKETCH_PRECISION: u32 = 12;

/// Number of HyperLogLog registers (`2^SKETCH_PRECISION`).
const SKETCH_REGISTERS: usize = 1 << SKETCH_PRECISION;

/// A mergeable distinct-count sketch: exact below a small threshold, a
/// hand-rolled HyperLogLog above it.
///
/// Small attribute domains — the common case for the finite-domain
/// instances this engine serves — stay **exact**: the sketch stores the set
/// of value hashes until it exceeds [`Self::EXACT_LIMIT`], then promotes to
/// `2^12` one-byte max-rank registers, keeping memory fixed (~4 KiB) and
/// the relative error near 1.6 % no matter how many million values stream
/// through.
///
/// Hashing is deterministic — the engine's [`FxHasher`] followed by a
/// SplitMix64-style avalanche finaliser (Fx alone is too regular in its low
/// bits for rank statistics) — and both representations are pure functions
/// of the *set* of inserted values.  Promotion folds the stored hashes into
/// the registers with the same register-wise `max`, so [`Self::merge`] is
/// associative, commutative and idempotent regardless of the order morsels
/// finish in: merged sketches are identical at every thread count.
///
/// The sketch is insert-only (registers cannot forget): after deletions the
/// estimate is an upper bound on the surviving distinct count — bounded
/// drift the runtime re-plan feedback absorbs — until the affected relation
/// is re-gathered ([`RelationStats::refresh_relation`]).
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    repr: SketchRepr,
}

#[derive(Debug, Clone)]
enum SketchRepr {
    /// Hashes of every inserted value, while the set is small.
    Exact(FxHashSet<u64>),
    /// HyperLogLog max-rank registers, one byte each.
    Hll(Vec<u8>),
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch::new()
    }
}

impl DistinctSketch {
    /// Distinct-value threshold below which the sketch stays exact.
    pub const EXACT_LIMIT: usize = 1024;

    /// An empty sketch (exact representation).
    pub fn new() -> Self {
        DistinctSketch {
            repr: SketchRepr::Exact(FxHashSet::default()),
        }
    }

    /// The deterministic 64-bit hash a value contributes: [`FxHasher`]
    /// mixed through a SplitMix64-style finaliser so every bit avalanches.
    fn hash_value(v: Value) -> u64 {
        let mut fx = FxHasher::default();
        fx.write_u64(v);
        let mut x = fx.finish();
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }

    /// Folds one value hash into a register array: the top
    /// [`SKETCH_PRECISION`] bits pick the register, the rank is the
    /// position of the first set bit among the remaining bits.
    fn fold_hash(regs: &mut [u8], h: u64) {
        let idx = (h >> (64 - SKETCH_PRECISION)) as usize;
        let rest = h << SKETCH_PRECISION;
        let rank = (rest.leading_zeros() + 1).min(64 - SKETCH_PRECISION + 1) as u8;
        if regs[idx] < rank {
            regs[idx] = rank;
        }
    }

    /// Promotes an exact hash set into HyperLogLog registers.
    fn promoted(hashes: &FxHashSet<u64>) -> Vec<u8> {
        let mut regs = vec![0u8; SKETCH_REGISTERS];
        for &h in hashes {
            DistinctSketch::fold_hash(&mut regs, h);
        }
        regs
    }

    /// Records one value.  Duplicate inserts are no-ops in both
    /// representations.
    pub fn insert(&mut self, v: Value) {
        let h = DistinctSketch::hash_value(v);
        match &mut self.repr {
            SketchRepr::Exact(set) => {
                set.insert(h);
                if set.len() > Self::EXACT_LIMIT {
                    self.repr = SketchRepr::Hll(DistinctSketch::promoted(set));
                }
            }
            SketchRepr::Hll(regs) => DistinctSketch::fold_hash(regs, h),
        }
    }

    /// Merges another sketch into this one.  Associative, commutative and
    /// idempotent: the result depends only on the union of inserted values,
    /// never on merge order — the property that keeps morsel-parallel
    /// statistics gathering thread-count-invariant.
    pub fn merge(&mut self, other: &DistinctSketch) {
        match (&mut self.repr, &other.repr) {
            (SketchRepr::Exact(a), SketchRepr::Exact(b)) => {
                a.extend(b.iter().copied());
                if a.len() > Self::EXACT_LIMIT {
                    self.repr = SketchRepr::Hll(DistinctSketch::promoted(a));
                }
            }
            (SketchRepr::Exact(a), SketchRepr::Hll(b)) => {
                let mut regs = DistinctSketch::promoted(a);
                for (r, &o) in regs.iter_mut().zip(b.iter()) {
                    *r = (*r).max(o);
                }
                self.repr = SketchRepr::Hll(regs);
            }
            (SketchRepr::Hll(regs), SketchRepr::Exact(b)) => {
                for &h in b.iter() {
                    DistinctSketch::fold_hash(regs, h);
                }
            }
            (SketchRepr::Hll(a), SketchRepr::Hll(b)) => {
                for (r, &o) in a.iter_mut().zip(b.iter()) {
                    *r = (*r).max(o);
                }
            }
        }
    }

    /// Whether the sketch is still in its exact representation (estimates
    /// are then exact counts).
    pub fn is_exact(&self) -> bool {
        matches!(self.repr, SketchRepr::Exact(_))
    }

    /// The estimated distinct count: exact while small, the standard
    /// HyperLogLog estimator (with the linear-counting small-range
    /// correction) after promotion.
    pub fn estimate(&self) -> u64 {
        match &self.repr {
            SketchRepr::Exact(set) => set.len() as u64,
            SketchRepr::Hll(regs) => {
                let m = SKETCH_REGISTERS as f64;
                let alpha = 0.7213 / (1.0 + 1.079 / m);
                let mut inv_sum = 0.0f64;
                let mut zeros = 0usize;
                for &r in regs.iter() {
                    inv_sum += 1.0 / (1u64 << r) as f64;
                    if r == 0 {
                        zeros += 1;
                    }
                }
                let raw = alpha * m * m / inv_sum;
                let est = if raw <= 2.5 * m && zeros > 0 {
                    m * (m / zeros as f64).ln()
                } else {
                    raw
                };
                est.round() as u64
            }
        }
    }
}

/// Default [`PlanConfig::replan_ratio`]: re-plan when a subset's actual
/// cardinality is off from its estimate by more than 8× either way.
pub const DEFAULT_REPLAN_RATIO: f64 = 8.0;

/// When the lattice evaluates a sub-join mask **count-only** (folding the
/// hash-probe matches straight into an [`crate::join::AggSummary`] instead
/// of materialising a [`crate::join::JoinResult`] — see the `join` module's
/// "Aggregate fold" docs).
///
/// The decision is per mask and purely a performance choice: both
/// evaluation modes produce identical numbers, so every setting yields
/// byte-identical sensitivity outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggMode {
    /// Demand analysis decides: masks some other mask's chain is built
    /// through ([`JoinPlan::is_chain_parent`]) and the full join stay
    /// materialized; terminal masks — whose only consumers are the
    /// aggregate reads of the sensitivity layer — go count-only.  A warm
    /// materialized entry is still read directly when present.
    #[default]
    Auto,
    /// Force the aggregate fold on every proper sub-join read, even when a
    /// materialized entry exists (the CI stress setting).  The populate
    /// skip set equals [`AggMode::Auto`]'s.
    Always,
    /// Never aggregate: every mask is materialized (the historical
    /// behaviour, kept as the in-process oracle).
    Never,
}

/// Knobs of the adaptive planning layer.
///
/// Carried by [`crate::ExecContext`] (see
/// [`crate::ExecContext::with_plan_config`]) and threaded into every
/// populate of the sub-join lattice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// Estimate-error factor that triggers a re-plan: when a materialised
    /// subset's `max(actual/estimate, estimate/actual)` exceeds this ratio,
    /// the not-yet-materialised remainder of the lattice is re-planned with
    /// measured cardinalities as exact anchors.  Must be ≥ 1; `1.0` re-plans
    /// on any deviation (the CI stress setting), `f64::INFINITY` disables
    /// re-planning.  Defaults to [`DEFAULT_REPLAN_RATIO`], overridable with
    /// the `DPSYN_REPLAN_RATIO` environment variable.
    pub replan_ratio: f64,
    /// Per-mask materialize-vs-aggregate policy.  Defaults to
    /// [`AggMode::Auto`], overridable with the `DPSYN_AGG_FORCE`
    /// environment variable (`always`, `never` or `auto`).
    pub agg_mode: AggMode,
}

impl Default for PlanConfig {
    /// Reads `DPSYN_REPLAN_RATIO` and `DPSYN_AGG_FORCE` (falling back to
    /// [`DEFAULT_REPLAN_RATIO`] / [`AggMode::Auto`]), same as
    /// [`PlanConfig::from_env`].
    fn default() -> Self {
        PlanConfig::from_env()
    }
}

impl PlanConfig {
    /// A config with an explicit re-plan ratio (clamped up to 1), ignoring
    /// the environment.
    pub fn with_replan_ratio(replan_ratio: f64) -> Self {
        PlanConfig {
            replan_ratio: if replan_ratio.is_nan() {
                DEFAULT_REPLAN_RATIO
            } else {
                replan_ratio.max(1.0)
            },
            agg_mode: AggMode::default(),
        }
    }

    /// This config with an explicit materialize-vs-aggregate policy.
    pub fn with_agg_mode(mut self, agg_mode: AggMode) -> Self {
        self.agg_mode = agg_mode;
        self
    }

    /// Reads the config from the environment: `DPSYN_REPLAN_RATIO` (a float
    /// ≥ 1) overrides [`DEFAULT_REPLAN_RATIO`] and `DPSYN_AGG_FORCE`
    /// (`always` / `never` / `auto`) overrides [`AggMode::Auto`]; unset,
    /// empty or invalid values fall back to the defaults.
    pub fn from_env() -> Self {
        let ratio = std::env::var("DPSYN_REPLAN_RATIO")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|r| !r.is_nan() && *r >= 1.0)
            .unwrap_or(DEFAULT_REPLAN_RATIO);
        let agg_mode = std::env::var("DPSYN_AGG_FORCE")
            .ok()
            .and_then(|s| match s.trim().to_ascii_lowercase().as_str() {
                "always" => Some(AggMode::Always),
                "never" => Some(AggMode::Never),
                "auto" => Some(AggMode::Auto),
                _ => None,
            })
            .unwrap_or_default();
        PlanConfig {
            replan_ratio: ratio,
            agg_mode,
        }
    }
}

/// Feedback-loop diagnostics from one adaptive populate of the lattice:
/// how far the estimates were off, how often the re-plan threshold fired,
/// and what the re-plans changed.  Recorded on the context's LRU slot and
/// surfaced through [`PlanStats::replan`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplanStats {
    /// Materialised subsets whose actual cardinality was compared against a
    /// planner estimate.
    pub measured: usize,
    /// Of those, how many breached [`PlanConfig::replan_ratio`].
    pub triggers: usize,
    /// Re-planning rounds executed (at most one per lattice level or lazy
    /// chain step, however many subsets breached in it).
    pub replans: usize,
    /// Not-yet-materialised subsets whose pivot changed across all re-plans.
    pub pivots_changed: usize,
    /// Largest observed error factor `max(actual/est, est/actual)`.
    pub max_error: f64,
    /// Mean error factor over all measured subsets.
    pub mean_error: f64,
}

impl ReplanStats {
    /// Records one measured subset's error factor.
    pub(crate) fn record_error(&mut self, err: f64) {
        self.measured += 1;
        self.max_error = self.max_error.max(err);
        self.mean_error += (err - self.mean_error) / self.measured as f64;
    }

    /// Accumulates another populate's stats into this one (weighted mean,
    /// max of maxima, sums elsewhere).
    pub fn absorb(&mut self, other: &ReplanStats) {
        let total = self.measured + other.measured;
        if total > 0 {
            self.mean_error = (self.mean_error * self.measured as f64
                + other.mean_error * other.measured as f64)
                / total as f64;
        }
        self.measured = total;
        self.triggers += other.triggers;
        self.replans += other.replans;
        self.pivots_changed += other.pivots_changed;
        self.max_error = self.max_error.max(other.max_error);
    }
}

/// Per-relation statistics feeding the planner's cost model: exact row
/// counts plus a [`DistinctSketch`] per attribute, gathered in one
/// streaming pass over the instance and cached (inside the plan they
/// produce) per fingerprint by [`crate::ExecContext`].
#[derive(Debug, Clone)]
pub struct RelationStats {
    /// Distinct tuple count per relation (exact — the relation stores
    /// distinct tuples with frequencies, so this is just its length).
    rows: Vec<usize>,
    /// Per relation: a distinct-count sketch per attribute, aligned with
    /// the relation's (sorted) attribute list.
    distinct: Vec<Vec<(AttrId, DistinctSketch)>>,
}

impl RelationStats {
    /// Gathers the statistics in one pass over every relation, sequentially.
    pub fn gather(query: &JoinQuery, instance: &Instance) -> Result<Self> {
        RelationStats::gather_with(query, instance, Parallelism::SEQUENTIAL)
    }

    /// [`Self::gather`] with the pass swept through the worker pool: each
    /// relation is split into `GATHER_MORSEL_ROWS`-row morsels claimed by
    /// stealing, and the partial sketches are merged back in relation (and
    /// morsel) order.  Sketch merging is order-independent, so the result
    /// is identical to the sequential gather at every thread count.
    pub fn gather_with(query: &JoinQuery, instance: &Instance, par: Parallelism) -> Result<Self> {
        if instance.num_relations() != query.num_relations() {
            return Err(RelationalError::RelationCountMismatch {
                expected: query.num_relations(),
                got: instance.num_relations(),
            });
        }
        let m = instance.num_relations();
        let mut tasks: Vec<(usize, usize)> = Vec::new();
        for r in 0..m {
            let morsels = instance
                .relation(r)
                .distinct_count()
                .div_ceil(GATHER_MORSEL_ROWS)
                .max(1);
            for j in 0..morsels {
                tasks.push((r, j));
            }
        }
        let partials = exec::par_map(par, tasks.len(), |i| {
            let (r, j) = tasks[i];
            let rel = instance.relation(r);
            let mut sketches: Vec<DistinctSketch> =
                rel.attrs().iter().map(|_| DistinctSketch::new()).collect();
            for (t, _) in rel
                .iter()
                .skip(j * GATHER_MORSEL_ROWS)
                .take(GATHER_MORSEL_ROWS)
            {
                for (pos, &v) in t.iter().enumerate() {
                    sketches[pos].insert(v);
                }
            }
            sketches
        });
        let mut distinct: Vec<Vec<(AttrId, DistinctSketch)>> = (0..m)
            .map(|r| {
                instance
                    .relation(r)
                    .attrs()
                    .iter()
                    .map(|&a| (a, DistinctSketch::new()))
                    .collect()
            })
            .collect();
        for (i, partial) in partials.into_iter().enumerate() {
            let (r, _) = tasks[i];
            for (slot, sketch) in distinct[r].iter_mut().zip(partial) {
                slot.1.merge(&sketch);
            }
        }
        let rows = (0..m)
            .map(|r| instance.relation(r).distinct_count())
            .collect();
        Ok(RelationStats { rows, distinct })
    }

    /// Number of relations the statistics cover.
    pub fn num_relations(&self) -> usize {
        self.rows.len()
    }

    /// Distinct tuple count of relation `r` (exact).
    pub fn rows(&self, r: usize) -> usize {
        self.rows[r]
    }

    /// Estimated distinct value count of attribute `attr` within relation
    /// `r` (zero if the relation does not carry the attribute; exact while
    /// the attribute's sketch is below [`DistinctSketch::EXACT_LIMIT`]).
    pub fn distinct(&self, r: usize, attr: AttrId) -> u64 {
        self.distinct[r]
            .iter()
            .find(|&&(a, _)| a == attr)
            .map(|(_, s)| s.estimate())
            .unwrap_or(0)
    }

    /// Folds newly inserted tuples of relation `r` into its per-attribute
    /// sketches — the streaming-update fast path (one sketch insert per
    /// value, no relation scan).  Sketches are insert-only: tuples *removed*
    /// by an update cannot be subtracted here, so after net removals the
    /// distinct estimates become upper bounds — bounded drift the runtime
    /// re-plan feedback absorbs.  Call [`Self::refresh_relation`] to restore
    /// exactness once removals pile up.
    pub fn absorb_inserts<'a, I>(&mut self, r: usize, tuples: I)
    where
        I: IntoIterator<Item = &'a [Value]>,
    {
        for t in tuples {
            for (pos, &v) in t.iter().enumerate() {
                if let Some(slot) = self.distinct[r].get_mut(pos) {
                    slot.1.insert(v);
                }
            }
        }
    }

    /// Records relation `r`'s exact post-update row count.
    pub fn set_rows(&mut self, r: usize, rows: usize) {
        self.rows[r] = rows;
    }

    /// Re-gathers relation `r`'s statistics from scratch — required after
    /// net removals, which the insert-only sketches cannot express.
    pub fn refresh_relation(&mut self, instance: &Instance, r: usize) {
        let rel = instance.relation(r);
        let mut sketches: Vec<(AttrId, DistinctSketch)> = rel
            .attrs()
            .iter()
            .map(|&a| (a, DistinctSketch::new()))
            .collect();
        for (t, _) in rel.iter() {
            for (pos, &v) in t.iter().enumerate() {
                sketches[pos].1.insert(v);
            }
        }
        self.distinct[r] = sketches;
        self.rows[r] = rel.distinct_count();
    }
}

/// One subset's entry in a cost-based decomposition: the relation peeled off
/// (joined last) and the estimated cardinality of the subset's sub-join.
#[derive(Debug, Clone, Copy)]
struct PlanNode {
    /// Relation index joined last; the subset's parent in the DAG is the
    /// subset minus this relation.
    pivot: u8,
    /// Estimated distinct-tuple cardinality of the subset's sub-join.
    est_rows: f64,
}

/// How a plan maps subsets to parents.
#[derive(Debug)]
enum Decomposition {
    /// The historical chain: always peel the highest relation index.
    FixedPrefix,
    /// Planner-chosen pivots, indexed densely by subset bitmask.
    CostBased(Vec<PlanNode>),
}

/// Builds the full bottom-up decomposition table from per-relation
/// statistics.  `anchors` maps already-materialised subset masks to their
/// **actual** cardinalities, which override the independence estimates —
/// the runtime-feedback hook: children of an anchored subset estimate from
/// measured truth instead of compounding a bad guess.
///
/// Anchors also propagate **upward** as a monotone floor: an unanchored
/// mask's estimate is raised to the largest measured cardinality among its
/// anchored subsets (computed with a subset-max DP, `O(2^m · m)`).  Without
/// this, a correlated attribute pair that fooled the independence estimate
/// on one measured mask keeps fooling it on every sibling route that joins
/// the same pair of relations along a different chain — the floor is how
/// one measurement disqualifies the whole family of trap routes.  Joins can
/// in principle shrink below a subset's cardinality, so the floor is a
/// heuristic, not a bound; estimates only ever steer routing, never values.
fn build_nodes(
    query: &JoinQuery,
    stats: &RelationStats,
    anchors: &FxHashMap<u32, f64>,
) -> Vec<PlanNode> {
    let m = query.num_relations();
    // For each attribute, the bitmask of relations carrying it.
    let mut attr_rels: FxHashMap<AttrId, u32> = FxHashMap::default();
    for (r, attrs) in query.relations().iter().enumerate() {
        for &a in attrs {
            *attr_rels.entry(a).or_insert(0) |= 1u32 << r;
        }
    }
    // Distinct-count estimate of attribute `a` within the sub-join of
    // `mask`: joins only ever filter values, so the tightest per-relation
    // count is an upper bound (the standard independence estimate).
    let v_of = |mask: u32, a: AttrId| -> f64 {
        let carriers = attr_rels.get(&a).copied().unwrap_or(0) & mask;
        let mut best = f64::INFINITY;
        let mut bits = carriers;
        while bits != 0 {
            let r = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            best = best.min(stats.distinct(r, a) as f64);
        }
        best
    };

    let full_count = 1usize << m;
    let mut nodes = vec![
        PlanNode {
            pivot: 0,
            est_rows: 0.0
        };
        full_count
    ];
    // Subset-max DP over the anchors: `floor[mask]` is the largest anchored
    // cardinality among `mask`'s (improper) subsets, built alongside the
    // nodes in the same bottom-up sweep.
    let mut floor = vec![0.0f64; full_count];
    // Bottom-up over popcount: every proper sub-mask of `mask` is
    // already planned when `mask` is visited.
    for count in 1..=m as u32 {
        for mask in 1u32..full_count as u32 {
            if mask.count_ones() != count {
                continue;
            }
            let mut fl = 0.0f64;
            let mut bits = mask;
            while bits != 0 {
                let p = bits.trailing_zeros();
                bits &= bits - 1;
                fl = fl.max(floor[(mask & !(1u32 << p)) as usize]);
            }
            let anchored = anchors.get(&mask).copied();
            floor[mask as usize] = fl.max(anchored.unwrap_or(0.0));
            if count == 1 {
                let r = mask.trailing_zeros() as usize;
                nodes[mask as usize] = PlanNode {
                    pivot: r as u8,
                    est_rows: anchored.unwrap_or(stats.rows(r) as f64),
                };
                continue;
            }
            let mut best: Option<(f64, f64, usize)> = None;
            let mut bits = mask;
            while bits != 0 {
                let p = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let parent = mask & !(1u32 << p);
                let parent_est = nodes[parent as usize].est_rows;
                // |parent ⋈ R_p| ≈ |parent|·|R_p| / Π_a max(V(parent, a), V(p, a))
                // over the shared attributes a — the classic independence
                // estimate; disconnected pivots divide by nothing and
                // price the cross product honestly.
                let mut denom = 1.0f64;
                for &a in query.relation_attrs(p) {
                    let others = attr_rels.get(&a).copied().unwrap_or(0) & parent;
                    if others != 0 {
                        denom *= v_of(parent, a).max(stats.distinct(p, a) as f64).max(1.0);
                    }
                }
                let step_est = parent_est * stats.rows(p) as f64 / denom;
                let candidate = (parent_est, step_est, p);
                let better = match best {
                    None => true,
                    Some(b) => candidate < b,
                };
                if better {
                    best = Some(candidate);
                }
            }
            let (_, est_rows, pivot) = best.expect("non-empty mask has a pivot");
            nodes[mask as usize] = PlanNode {
                pivot: pivot as u8,
                est_rows: anchored.unwrap_or_else(|| est_rows.max(fl)),
            };
        }
    }
    nodes
}

/// A join plan: per-subset decomposition choice (which relation each subset
/// peels off, with the estimated intermediate cardinalities that justified
/// it) plus the greedy fold order of the top-level join.  Cost-based plans
/// carry the [`RelationStats`] they were built from, so streaming updates
/// can patch the statistics and re-planning can re-price the lattice
/// without a fresh gather.  See the module docs for where plans are built
/// and shared.
#[derive(Debug)]
pub struct JoinPlan {
    num_relations: usize,
    decomp: Decomposition,
    /// Relation order of the top-level full join (the engine's greedy
    /// connectivity-aware order, recorded for inspection).  Empty when the
    /// plan was built without instance statistics.
    top_order: Vec<usize>,
    /// The statistics the plan was priced from (absent on bare
    /// fixed-prefix plans).
    stats: Option<RelationStats>,
}

impl JoinPlan {
    /// The historical fixed decomposition for an `m`-relation query: every
    /// subset peels its highest relation index.  No statistics, no
    /// estimates; byte-for-byte the pre-planner behaviour.
    pub fn fixed_prefix(num_relations: usize) -> Self {
        JoinPlan {
            num_relations,
            decomp: Decomposition::FixedPrefix,
            top_order: Vec::new(),
            stats: None,
        }
    }

    /// Builds the boundary-aware cost-based plan for `(query, instance)`:
    /// gathers [`RelationStats`], estimates every subset's cardinality
    /// bottom-up over the lattice, and picks each subset's pivot so the
    /// parent intermediate it depends on is the smallest available
    /// (estimated parent size, then estimated own size, then lowest pivot
    /// index — a total, deterministic order).  Queries wider than
    /// [`PLAN_MAX_RELATIONS`] fall back to the fixed-prefix chain.
    pub fn cost_based(query: &JoinQuery, instance: &Instance) -> Result<Self> {
        JoinPlan::cost_based_with(query, instance, Parallelism::SEQUENTIAL)
    }

    /// [`Self::cost_based`] with the statistics pass swept through the worker
    /// pool ([`RelationStats::gather_with`]).  The plan is a pure function of
    /// the gathered statistics, which are merged in relation order — so the
    /// resulting plan is identical at every thread count.
    pub fn cost_based_with(
        query: &JoinQuery,
        instance: &Instance,
        par: Parallelism,
    ) -> Result<Self> {
        let stats = RelationStats::gather_with(query, instance, par)?;
        JoinPlan::from_stats(query, instance, stats)
    }

    /// Builds the cost-based plan from already-gathered statistics — the
    /// streaming-update path, where [`crate::ExecContext::apply_updates`]
    /// patches the previous plan's sketches from the batch delta and
    /// re-prices the lattice without touching the relations again.
    pub fn from_stats(
        query: &JoinQuery,
        instance: &Instance,
        stats: RelationStats,
    ) -> Result<Self> {
        let m = query.num_relations();
        if stats.num_relations() != m {
            return Err(RelationalError::RelationCountMismatch {
                expected: m,
                got: stats.num_relations(),
            });
        }
        let all: Vec<usize> = (0..m).collect();
        let top_order = fold_order(instance, &all);
        if m > PLAN_MAX_RELATIONS {
            return Ok(JoinPlan {
                num_relations: m,
                decomp: Decomposition::FixedPrefix,
                top_order,
                stats: Some(stats),
            });
        }
        let nodes = build_nodes(query, &stats, &FxHashMap::default());
        Ok(JoinPlan {
            num_relations: m,
            decomp: Decomposition::CostBased(nodes),
            top_order,
            stats: Some(stats),
        })
    }

    /// Re-prices the whole decomposition table with measured cardinalities
    /// as exact anchors: each mask in `anchors` takes its actual row count
    /// instead of the independence estimate, anchored cardinalities
    /// propagate to supersets as a monotone floor (see `build_nodes`), and
    /// every not-yet-materialised subset re-chooses its pivot against the
    /// corrected costs.  Returns
    /// `None` when the plan carries no statistics (fixed-prefix plans have
    /// nothing to re-price).  Values are plan-invariant, so swapping a
    /// re-planned decomposition in mid-populate never changes results —
    /// only which intermediates get built.
    pub fn replanned(&self, query: &JoinQuery, anchors: &FxHashMap<u32, f64>) -> Option<JoinPlan> {
        let stats = self.stats.as_ref()?;
        if !self.is_cost_based() {
            return None;
        }
        let nodes = build_nodes(query, stats, anchors);
        Some(JoinPlan {
            num_relations: self.num_relations,
            decomp: Decomposition::CostBased(nodes),
            top_order: self.top_order.clone(),
            stats: Some(stats.clone()),
        })
    }

    /// The statistics the plan was priced from, when it carries them.
    pub fn stats(&self) -> Option<&RelationStats> {
        self.stats.as_ref()
    }

    /// Number of relations the plan covers.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Whether the plan carries cost-based pivots (false for the
    /// fixed-prefix chain, including the wide-query fallback).
    pub fn is_cost_based(&self) -> bool {
        matches!(self.decomp, Decomposition::CostBased(_))
    }

    /// The relation peeled off (joined last) when materialising `mask`'s
    /// sub-join.  `mask` must be non-zero and within range.
    pub fn pivot(&self, mask: u32) -> usize {
        debug_assert!(mask != 0 && (mask >> self.num_relations) == 0);
        match &self.decomp {
            Decomposition::FixedPrefix => (31 - mask.leading_zeros()) as usize,
            Decomposition::CostBased(nodes) => nodes[mask as usize].pivot as usize,
        }
    }

    /// The parent subset `mask`'s sub-join is built from: `mask` minus its
    /// pivot (zero for singletons).
    pub fn parent(&self, mask: u32) -> u32 {
        mask & !(1u32 << self.pivot(mask))
    }

    /// Consumer-demand analysis over the decomposition DAG: whether some
    /// other lattice mask's build chain passes through `mask` under the
    /// current plan — i.e. whether any superset `mask | {r}` picks `r` as
    /// its pivot, making `mask` its parent.  Chain parents must stay
    /// materialized (children are built by one binary step from their
    /// parent's tuples); *terminal* masks — proper masks that are nobody's
    /// parent — feed only the sensitivity layer's aggregate reads and are
    /// the candidates for count-only evaluation under [`AggMode::Auto`].
    ///
    /// A proper mask only ever parents its immediate supersets, so one pass
    /// over the unset bits decides.  The answer is plan-relative: a re-plan
    /// can re-route chains, which is why the count-only populate always
    /// materializes missing ancestors through the lazy chain walk rather
    /// than assuming a parent was kept.
    pub fn is_chain_parent(&self, mask: u32) -> bool {
        debug_assert!(mask != 0 && (mask >> self.num_relations) == 0);
        let full = (1u32 << self.num_relations) - 1;
        if mask == full {
            return false;
        }
        let mut rest = full & !mask;
        while rest != 0 {
            let r = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if self.pivot(mask | (1u32 << r)) == r {
                return true;
            }
        }
        false
    }

    /// The planner's estimated distinct-tuple cardinality of `mask`'s
    /// sub-join (`None` on fixed-prefix plans, which carry no estimates).
    pub fn estimated_rows(&self, mask: u32) -> Option<f64> {
        match &self.decomp {
            Decomposition::FixedPrefix => None,
            Decomposition::CostBased(nodes) => Some(nodes[mask as usize].est_rows),
        }
    }

    /// The recorded relation order of the top-level full join (empty on
    /// plans built without instance statistics).
    pub fn top_order(&self) -> &[usize] {
        &self.top_order
    }

    /// The pivot chain from the full mask down to a singleton — the spine of
    /// intermediates a lazy full-lattice walk materialises.
    pub fn spine(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_relations);
        if self.num_relations == 0 || self.num_relations >= 32 {
            return out;
        }
        let mut mask = (1u32 << self.num_relations) - 1;
        while mask != 0 {
            let p = self.pivot(mask);
            out.push(p);
            mask &= !(1u32 << p);
        }
        out
    }

    /// Validates that the plan was built for an `m`-relation query.
    pub(crate) fn check_relations(&self, m: usize) -> Result<()> {
        if self.num_relations != m {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "join plan covers {} relations but the query has {m}",
                self.num_relations
            )));
        }
        Ok(())
    }
}

/// A shared, immutable plan handle (what caches and context slots carry).
pub type SharedJoinPlan = Arc<JoinPlan>;

/// Planner diagnostics for one `(query, instance)` pair: the decomposition
/// choices with estimated and (where materialised) actual intermediate
/// cardinalities, plus the adaptive feedback loop's [`ReplanStats`] when a
/// measured populate has run.  Produced by
/// [`crate::ExecContext::plan_stats`] / `dpsyn::Session::plan_stats`.
#[derive(Debug, Clone)]
pub struct PlanStats {
    /// Whether the stored plan is cost-based (vs the fixed-prefix fallback).
    pub cost_based: bool,
    /// Relation order of the top-level full join.
    pub top_order: Vec<usize>,
    /// The pivot chain from the full mask down (see [`JoinPlan::spine`]).
    pub spine: Vec<usize>,
    /// Per-subset decomposition entries (empty beyond
    /// [`PLAN_MAX_RELATIONS`] relations).
    pub nodes: Vec<PlanNodeStats>,
    /// Number of lattice entries currently materialised for the pair.
    pub cached_masks: usize,
    /// Total distinct tuples across those materialised entries — the
    /// resident intermediate footprint the planner works to shrink.
    pub cached_tuples: usize,
    /// Number of lattice entries held as count-only aggregate summaries
    /// (see [`AggMode`]) instead of materialised tuples.
    pub aggregated_masks: usize,
    /// Approximate resident bytes across both entry kinds (flat tuple
    /// buffers for materialised entries, a fixed-size summary for
    /// aggregated ones).
    pub cached_bytes: usize,
    /// Runtime-feedback diagnostics from the slot's most recent adaptive
    /// populate (`None` before one has run).
    pub replan: Option<ReplanStats>,
}

/// One subset's row in [`PlanStats`].
#[derive(Debug, Clone, Copy)]
pub struct PlanNodeStats {
    /// Subset bitmask (bit `i` set ⇔ relation `i` participates).
    pub mask: u32,
    /// Relation the subset peels off (joined last).
    pub pivot: usize,
    /// Planner-estimated cardinality (`None` on fixed-prefix plans).
    pub estimated_rows: Option<f64>,
    /// Actual distinct-tuple count, when the subset is resident in the
    /// context's lattice (from the tuples of a materialised entry or the
    /// recorded count of an aggregated one).
    pub actual_rows: Option<usize>,
    /// Whether the resident entry is a count-only aggregate summary rather
    /// than materialised tuples (`false` when absent or materialised).
    pub aggregated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn path_instance(m: usize, per_rel: u64) -> (JoinQuery, Instance) {
        let q = JoinQuery::path(m, 64).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..m {
            for v in 0..per_rel {
                inst.relation_mut(r)
                    .add(vec![v % 64, (v + 1) % 64], 1)
                    .unwrap();
            }
        }
        (q, inst)
    }

    #[test]
    fn stats_count_rows_and_distinct_values() {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 =
            Relation::from_tuples(ids(&[1, 2]), vec![(vec![0, 0], 1), (vec![0, 1], 1)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let stats = RelationStats::gather(&q, &inst).unwrap();
        assert_eq!(stats.rows(0), 3);
        assert_eq!(stats.rows(1), 2);
        assert_eq!(stats.distinct(0, AttrId(0)), 3);
        assert_eq!(stats.distinct(0, AttrId(1)), 2);
        assert_eq!(stats.distinct(1, AttrId(1)), 1);
        // Attribute not carried by the relation.
        assert_eq!(stats.distinct(1, AttrId(0)), 0);
    }

    #[test]
    fn sketch_is_exact_below_the_limit_and_close_above_it() {
        let mut small = DistinctSketch::new();
        for v in 0..100u64 {
            small.insert(v * 7);
            small.insert(v * 7); // duplicates are no-ops
        }
        assert!(small.is_exact());
        assert_eq!(small.estimate(), 100);

        let n = 200_000u64;
        let mut big = DistinctSketch::new();
        for v in 0..n {
            big.insert(v);
        }
        assert!(!big.is_exact());
        let est = big.estimate() as f64;
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.05, "estimate {est} for {n} (rel. error {err})");
    }

    #[test]
    fn sketch_merge_is_order_independent() {
        let chunks: Vec<Vec<u64>> = vec![
            (0..5_000).collect(),
            (2_500..40_000).collect(),
            (100..300).collect(),
            (39_000..41_000).collect(),
        ];
        let sketches: Vec<DistinctSketch> = chunks
            .iter()
            .map(|c| {
                let mut s = DistinctSketch::new();
                for &v in c {
                    s.insert(v);
                }
                s
            })
            .collect();
        let mut forward = DistinctSketch::new();
        for s in &sketches {
            forward.merge(s);
        }
        let mut backward = DistinctSketch::new();
        for s in sketches.iter().rev() {
            backward.merge(s);
        }
        // ((0·1)·(2·3)) — a different association.
        let mut left = sketches[0].clone();
        left.merge(&sketches[1]);
        let mut right = sketches[2].clone();
        right.merge(&sketches[3]);
        left.merge(&right);
        assert_eq!(forward.estimate(), backward.estimate());
        assert_eq!(forward.estimate(), left.estimate());
        // Idempotence: merging a sketch with itself changes nothing.
        let before = forward.estimate();
        let copy = forward.clone();
        forward.merge(&copy);
        assert_eq!(forward.estimate(), before);
    }

    #[test]
    fn stats_patching_tracks_inserts_and_refresh_handles_removals() {
        let (q, mut inst) = path_instance(2, 20);
        let mut stats = RelationStats::gather(&q, &inst).unwrap();
        assert_eq!(stats.distinct(0, AttrId(0)), 20);
        // Insert two new tuples with fresh first-attribute values.
        let added: Vec<Vec<Value>> = vec![vec![40, 41], vec![41, 42]];
        for t in &added {
            inst.relation_mut(0).add(t.clone(), 1).unwrap();
        }
        stats.absorb_inserts(0, added.iter().map(|t| t.as_slice()));
        stats.set_rows(0, inst.relation(0).distinct_count());
        assert_eq!(stats.rows(0), 22);
        assert_eq!(stats.distinct(0, AttrId(0)), 22);
        // Removals need a refresh (sketches cannot forget).
        inst.relation_mut(0).set(vec![40, 41], 0).unwrap();
        stats.refresh_relation(&inst, 0);
        assert_eq!(stats.rows(0), inst.relation(0).distinct_count());
    }

    #[test]
    fn plan_config_reads_ratio_with_sane_fallbacks() {
        assert_eq!(PlanConfig::with_replan_ratio(3.0).replan_ratio, 3.0);
        // Sub-unit and NaN ratios are clamped to sane values.
        assert_eq!(PlanConfig::with_replan_ratio(0.25).replan_ratio, 1.0);
        assert_eq!(
            PlanConfig::with_replan_ratio(f64::NAN).replan_ratio,
            DEFAULT_REPLAN_RATIO
        );
        // Whatever the environment says, the parsed ratio is a finite-or-inf
        // value ≥ 1 (the CI stress run exports DPSYN_REPLAN_RATIO=1).
        let cfg = PlanConfig::from_env();
        assert!(cfg.replan_ratio >= 1.0);
        // Explicit constructors ignore the environment for the agg mode too.
        assert_eq!(PlanConfig::with_replan_ratio(3.0).agg_mode, AggMode::Auto);
        assert_eq!(
            PlanConfig::with_replan_ratio(3.0)
                .with_agg_mode(AggMode::Always)
                .agg_mode,
            AggMode::Always
        );
    }

    #[test]
    fn chain_parent_analysis_matches_the_decomposition() {
        // Fixed prefix: every superset peels its highest relation, so a
        // proper mask is a chain parent iff it lacks some higher relation
        // than its own top bit — equivalently, iff it contains relation
        // m-1 it parents nothing (terminal), otherwise mask | {next-higher
        // missing bit} peels that bit back to mask.
        for m in [3usize, 4, 5] {
            let plan = JoinPlan::fixed_prefix(m);
            let full = (1u32 << m) - 1;
            for mask in 1..full {
                // Brute-force the definition against the pivot table.
                let brute = (1..=full)
                    .filter(|&s| s != mask && (s & mask) == mask)
                    .any(|s| plan.parent(s) == mask);
                assert_eq!(
                    plan.is_chain_parent(mask),
                    brute,
                    "m = {m}, mask = {mask:#b}"
                );
                // Under FixedPrefix the terminal masks are exactly those
                // containing the highest relation.
                assert_eq!(!plan.is_chain_parent(mask), mask >> (m - 1) == 1);
            }
            assert!(!plan.is_chain_parent(full));
        }
        // Cost-based plans: validate against the brute-force definition.
        let (q, inst) = path_instance(4, 48);
        let plan = JoinPlan::cost_based(&q, &inst).unwrap();
        let full = (1u32 << 4) - 1;
        for mask in 1..=full {
            let brute = (1..=full)
                .filter(|&s| s != mask && (s & mask) == mask)
                .any(|s| plan.parent(s) == mask);
            assert_eq!(plan.is_chain_parent(mask), brute, "mask = {mask:#b}");
        }
    }

    #[test]
    fn replan_stats_absorb_keeps_weighted_means_and_maxima() {
        let mut a = ReplanStats::default();
        a.record_error(2.0);
        a.record_error(4.0);
        let mut b = ReplanStats::default();
        b.record_error(10.0);
        b.triggers = 1;
        b.replans = 1;
        b.pivots_changed = 3;
        a.absorb(&b);
        assert_eq!(a.measured, 3);
        assert_eq!(a.triggers, 1);
        assert_eq!(a.replans, 1);
        assert_eq!(a.pivots_changed, 3);
        assert_eq!(a.max_error, 10.0);
        assert!((a.mean_error - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_prefix_plan_peels_the_highest_index() {
        let plan = JoinPlan::fixed_prefix(4);
        assert!(!plan.is_cost_based());
        assert_eq!(plan.pivot(0b1011), 3);
        assert_eq!(plan.parent(0b1011), 0b0011);
        assert_eq!(plan.pivot(0b0001), 0);
        assert_eq!(plan.estimated_rows(0b1011), None);
        assert_eq!(plan.spine(), vec![3, 2, 1, 0]);
        assert!(plan.stats().is_none());
    }

    #[test]
    fn cost_based_plan_avoids_cross_product_parents_on_paths() {
        let (q, inst) = path_instance(4, 40);
        let plan = JoinPlan::cost_based(&q, &inst).unwrap();
        assert!(plan.is_cost_based());
        // {0, 1, 3}: the fixed chain peels 3 and routes through {0, 1}; any
        // choice is fine there.  {0, 2, 3} however must NOT peel 3 onto the
        // cross product {0, 2} — the planner peels 0, keeping the linear
        // {2, 3} as the parent.
        let mask = 0b1101u32;
        assert_eq!(plan.pivot(mask), 0, "parent {:#b}", plan.parent(mask));
        assert_eq!(plan.parent(mask), 0b1100);
        // Estimates price the cross product above the linear chains.
        let cross = plan.estimated_rows(0b0101).unwrap();
        let linear = plan.estimated_rows(0b0011).unwrap();
        assert!(cross > linear * 4.0, "cross {cross} vs linear {linear}");
    }

    #[test]
    fn replanned_anchors_reroute_around_measured_blowups() {
        let (q, inst) = path_instance(4, 40);
        let plan = JoinPlan::cost_based(&q, &inst).unwrap();
        // Unanchored, {0, 1, 3} routes through the linear {0, 1}.
        assert_eq!(plan.parent(0b1011), 0b0011);
        // Pretend populate measured {0, 1} as enormous: the re-planned
        // table must stop routing through it, and the anchored mask itself
        // reports the measured cardinality.
        let mut anchors = FxHashMap::default();
        anchors.insert(0b0011u32, 1e9);
        let replanned = plan.replanned(&q, &anchors).unwrap();
        assert_ne!(replanned.parent(0b1011), 0b0011);
        assert_eq!(replanned.estimated_rows(0b0011), Some(1e9));
        // No anchors ⇒ the re-planned table is the original.
        let same = plan.replanned(&q, &FxHashMap::default()).unwrap();
        for mask in 1u32..(1 << 4) {
            assert_eq!(same.pivot(mask), plan.pivot(mask));
            assert_eq!(same.estimated_rows(mask), plan.estimated_rows(mask));
        }
        // Fixed-prefix plans have nothing to re-price.
        assert!(JoinPlan::fixed_prefix(4).replanned(&q, &anchors).is_none());
    }

    #[test]
    fn plan_is_deterministic_and_matches_query_arity() {
        let (q, inst) = path_instance(3, 20);
        let a = JoinPlan::cost_based(&q, &inst).unwrap();
        let b = JoinPlan::cost_based(&q, &inst).unwrap();
        for mask in 1u32..(1 << 3) {
            assert_eq!(a.pivot(mask), b.pivot(mask));
            assert_eq!(a.estimated_rows(mask), b.estimated_rows(mask));
        }
        assert_eq!(a.top_order(), b.top_order());
        assert_eq!(a.top_order().len(), 3);
        assert!(a.check_relations(3).is_ok());
        assert!(a.check_relations(4).is_err());
    }

    #[test]
    fn parallel_stats_gather_matches_sequential_at_every_thread_count() {
        let (q, inst) = path_instance(4, 40);
        let seq = RelationStats::gather(&q, &inst).unwrap();
        for &threads in &[1usize, 2, 4, 8] {
            let par = RelationStats::gather_with(&q, &inst, Parallelism::threads(threads)).unwrap();
            for r in 0..4 {
                assert_eq!(par.rows(r), seq.rows(r), "threads {threads}");
                for a in 0..5u16 {
                    assert_eq!(
                        par.distinct(r, AttrId(a)),
                        seq.distinct(r, AttrId(a)),
                        "relation {r}, attr {a}, threads {threads}"
                    );
                }
            }
            let plan = JoinPlan::cost_based_with(&q, &inst, Parallelism::threads(threads)).unwrap();
            let base = JoinPlan::cost_based(&q, &inst).unwrap();
            for mask in 1u32..(1 << 4) {
                assert_eq!(plan.pivot(mask), base.pivot(mask), "threads {threads}");
                assert_eq!(plan.estimated_rows(mask), base.estimated_rows(mask));
            }
        }
    }

    #[test]
    fn singleton_estimates_are_exact_row_counts() {
        let (q, inst) = path_instance(3, 17);
        let plan = JoinPlan::cost_based(&q, &inst).unwrap();
        for r in 0..3 {
            assert_eq!(
                plan.estimated_rows(1 << r).unwrap(),
                inst.relation(r).distinct_count() as f64
            );
            assert_eq!(plan.pivot(1 << r), r);
            assert_eq!(plan.parent(1 << r), 0);
        }
    }

    #[test]
    fn mismatched_instance_is_rejected() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 1)]).unwrap();
        let inst = Instance::new(vec![r1]);
        assert!(RelationStats::gather(&q, &inst).is_err());
        assert!(JoinPlan::cost_based(&q, &inst).is_err());
    }
}
