//! Cost-based join planning: boundary-aware decomposition of the sub-join
//! lattice.
//!
//! Every sub-join the engine materialises — the `2^m` subset lattice behind
//! residual sensitivity, the size-`(m-1)` joins of local sensitivity, the
//! size-`(m-2)` probe indexes of [`crate::delta`] — is computed by peeling
//! one relation off a subset and joining it against the memoised rest (see
//! [`crate::cache`]).  *Which* relation gets peeled fixes the decomposition
//! chain, and with it the set (and size) of intermediate results the cache
//! keeps resident.  The historical choice — always drop the highest relation
//! index — is oblivious to the data: on a path query it happily routes the
//! chain of `{0, 1, 3}` through the cross product `{0, 3}` when the linear
//! `{0, 1}` was one bit away.
//!
//! A [`JoinPlan`] replaces that fixed rule with a **cost-based decomposition
//! DAG** in the spirit of Selinger-style optimizers, shrunk to the lattice
//! setting: cheap per-relation statistics ([`RelationStats`]: tuple counts
//! and per-attribute distinct counts, gathered in one pass over the
//! instance) feed textbook independence estimates of every subset's join
//! cardinality, and each subset's parent is chosen to minimise the estimated
//! intermediate it must materialise.  The plan also records the engine's
//! greedy [`fold_order`] for the top-level join, so callers can inspect the
//! complete evaluation strategy through [`PlanStats`].
//!
//! ### Where the plan lives
//!
//! Plans are built **once per instance fingerprint** by
//! [`crate::ExecContext::join_plan`] and stored in the context's LRU slot
//! alongside the lattice, the shared full join and the delta plan; every
//! checkout of the sub-join cache carries the same `Arc`, so parallel and
//! sequential consumers observe the identical decomposition.  Bare caches
//! ([`crate::SubJoinCache::new`], [`crate::ShardedSubJoinCache::new`])
//! default to [`JoinPlan::fixed_prefix`] — the exact historical chain — and
//! accept a planner-built plan through their `with_plan` constructors.
//!
//! ### Determinism contract
//!
//! The decomposition never changes values, only the order in which binary
//! join steps combine relations: a sub-join result is the same weighted
//! tuple set under every decomposition (joins are commutative and
//! associative; the engine's weights saturate identically outside
//! astronomically large joins), and every consumer of the lattice reads it
//! through order-free aggregates or sorted emits.  The plan itself is a
//! pure function of the query and the instance statistics — no randomness,
//! no thread-count dependence — so warm, cold, sequential and parallel
//! callers all decompose identically, and outputs stay byte-identical to
//! the fixed-prefix path and to [`crate::naive`].

use std::sync::Arc;

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::exec::{self, Parallelism};
use crate::hypergraph::JoinQuery;
use crate::instance::Instance;
use crate::join::fold_order;
use crate::Result;

/// Largest relation count for which the planner enumerates the full `2^m`
/// decomposition table (beyond it, [`JoinPlan::cost_based`] falls back to
/// the fixed-prefix chain — the table alone would dwarf the joins).
pub const PLAN_MAX_RELATIONS: usize = 16;

/// Cheap per-relation statistics feeding the planner's cost model: gathered
/// in one pass over the instance, cached per fingerprint by
/// [`crate::ExecContext`] (inside the plan they produce).
#[derive(Debug, Clone)]
pub struct RelationStats {
    /// Distinct tuple count per relation.
    rows: Vec<usize>,
    /// Per relation: distinct value count per attribute, aligned with the
    /// relation's (sorted) attribute list.
    distinct: Vec<Vec<(AttrId, u64)>>,
}

impl RelationStats {
    /// Gathers the statistics in one pass over every relation, sequentially.
    pub fn gather(query: &JoinQuery, instance: &Instance) -> Result<Self> {
        RelationStats::gather_with(query, instance, Parallelism::SEQUENTIAL)
    }

    /// [`Self::gather`] with relations swept through the worker pool: each
    /// relation's pass is independent, so workers claim relations by
    /// stealing.  Results are merged in relation order — identical to the
    /// sequential gather at every thread count.
    pub fn gather_with(query: &JoinQuery, instance: &Instance, par: Parallelism) -> Result<Self> {
        if instance.num_relations() != query.num_relations() {
            return Err(RelationalError::RelationCountMismatch {
                expected: query.num_relations(),
                got: instance.num_relations(),
            });
        }
        let per_relation = exec::par_map(par, instance.num_relations(), |i| {
            let rel = instance.relation(i);
            let attrs = rel.attrs();
            let mut seen: Vec<crate::hash::FxHashSet<u64>> = attrs
                .iter()
                .map(|_| crate::hash::FxHashSet::default())
                .collect();
            for (t, _) in rel.iter() {
                for (pos, &v) in t.iter().enumerate() {
                    seen[pos].insert(v);
                }
            }
            let distinct: Vec<(AttrId, u64)> = attrs
                .iter()
                .zip(&seen)
                .map(|(&a, s)| (a, s.len() as u64))
                .collect();
            (rel.distinct_count(), distinct)
        });
        let mut rows = Vec::with_capacity(per_relation.len());
        let mut distinct = Vec::with_capacity(per_relation.len());
        for (r, d) in per_relation {
            rows.push(r);
            distinct.push(d);
        }
        Ok(RelationStats { rows, distinct })
    }

    /// Distinct tuple count of relation `r`.
    pub fn rows(&self, r: usize) -> usize {
        self.rows[r]
    }

    /// Distinct value count of attribute `attr` within relation `r` (zero if
    /// the relation does not carry the attribute).
    pub fn distinct(&self, r: usize, attr: AttrId) -> u64 {
        self.distinct[r]
            .iter()
            .find(|&&(a, _)| a == attr)
            .map(|&(_, d)| d)
            .unwrap_or(0)
    }
}

/// One subset's entry in a cost-based decomposition: the relation peeled off
/// (joined last) and the estimated cardinality of the subset's sub-join.
#[derive(Debug, Clone, Copy)]
struct PlanNode {
    /// Relation index joined last; the subset's parent in the DAG is the
    /// subset minus this relation.
    pivot: u8,
    /// Estimated distinct-tuple cardinality of the subset's sub-join.
    est_rows: f64,
}

/// How a plan maps subsets to parents.
#[derive(Debug)]
enum Decomposition {
    /// The historical chain: always peel the highest relation index.
    FixedPrefix,
    /// Planner-chosen pivots, indexed densely by subset bitmask.
    CostBased(Vec<PlanNode>),
}

/// A join plan: per-subset decomposition choice (which relation each subset
/// peels off, with the estimated intermediate cardinalities that justified
/// it) plus the greedy fold order of the top-level join.  See the module
/// docs for where plans are built and shared.
#[derive(Debug)]
pub struct JoinPlan {
    num_relations: usize,
    decomp: Decomposition,
    /// Relation order of the top-level full join (the engine's greedy
    /// connectivity-aware order, recorded for inspection).  Empty when the
    /// plan was built without instance statistics.
    top_order: Vec<usize>,
}

impl JoinPlan {
    /// The historical fixed decomposition for an `m`-relation query: every
    /// subset peels its highest relation index.  No statistics, no
    /// estimates; byte-for-byte the pre-planner behaviour.
    pub fn fixed_prefix(num_relations: usize) -> Self {
        JoinPlan {
            num_relations,
            decomp: Decomposition::FixedPrefix,
            top_order: Vec::new(),
        }
    }

    /// Builds the boundary-aware cost-based plan for `(query, instance)`:
    /// gathers [`RelationStats`], estimates every subset's cardinality
    /// bottom-up over the lattice, and picks each subset's pivot so the
    /// parent intermediate it depends on is the smallest available
    /// (estimated parent size, then estimated own size, then lowest pivot
    /// index — a total, deterministic order).  Queries wider than
    /// [`PLAN_MAX_RELATIONS`] fall back to the fixed-prefix chain.
    pub fn cost_based(query: &JoinQuery, instance: &Instance) -> Result<Self> {
        JoinPlan::cost_based_with(query, instance, Parallelism::SEQUENTIAL)
    }

    /// [`Self::cost_based`] with the statistics pass swept through the worker
    /// pool ([`RelationStats::gather_with`]).  The plan is a pure function of
    /// the gathered statistics, which are merged in relation order — so the
    /// resulting plan is identical at every thread count.
    pub fn cost_based_with(
        query: &JoinQuery,
        instance: &Instance,
        par: Parallelism,
    ) -> Result<Self> {
        let m = query.num_relations();
        let stats = RelationStats::gather_with(query, instance, par)?;
        let all: Vec<usize> = (0..m).collect();
        let top_order = fold_order(instance, &all);
        if m > PLAN_MAX_RELATIONS {
            return Ok(JoinPlan {
                num_relations: m,
                decomp: Decomposition::FixedPrefix,
                top_order,
            });
        }

        // For each attribute, the bitmask of relations carrying it.
        let mut attr_rels: crate::hash::FxHashMap<AttrId, u32> = crate::hash::FxHashMap::default();
        for (r, attrs) in query.relations().iter().enumerate() {
            for &a in attrs {
                *attr_rels.entry(a).or_insert(0) |= 1u32 << r;
            }
        }
        // Distinct-count estimate of attribute `a` within the sub-join of
        // `mask`: joins only ever filter values, so the tightest per-relation
        // count is an upper bound (the standard independence estimate).
        let v_of = |mask: u32, a: AttrId| -> f64 {
            let carriers = attr_rels.get(&a).copied().unwrap_or(0) & mask;
            let mut best = f64::INFINITY;
            let mut bits = carriers;
            while bits != 0 {
                let r = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                best = best.min(stats.distinct(r, a) as f64);
            }
            best
        };

        let full_count = 1usize << m;
        let mut nodes = vec![
            PlanNode {
                pivot: 0,
                est_rows: 0.0
            };
            full_count
        ];
        // Bottom-up over popcount: every proper sub-mask of `mask` is
        // already planned when `mask` is visited.
        for count in 1..=m as u32 {
            for mask in 1u32..full_count as u32 {
                if mask.count_ones() != count {
                    continue;
                }
                if count == 1 {
                    let r = mask.trailing_zeros() as usize;
                    nodes[mask as usize] = PlanNode {
                        pivot: r as u8,
                        est_rows: stats.rows(r) as f64,
                    };
                    continue;
                }
                let mut best: Option<(f64, f64, usize)> = None;
                let mut bits = mask;
                while bits != 0 {
                    let p = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let parent = mask & !(1u32 << p);
                    let parent_est = nodes[parent as usize].est_rows;
                    // |parent ⋈ R_p| ≈ |parent|·|R_p| / Π_a max(V(parent, a), V(p, a))
                    // over the shared attributes a — the classic independence
                    // estimate; disconnected pivots divide by nothing and
                    // price the cross product honestly.
                    let mut denom = 1.0f64;
                    for &a in query.relation_attrs(p) {
                        let others = attr_rels.get(&a).copied().unwrap_or(0) & parent;
                        if others != 0 {
                            denom *= v_of(parent, a).max(stats.distinct(p, a) as f64).max(1.0);
                        }
                    }
                    let step_est = parent_est * stats.rows(p) as f64 / denom;
                    let candidate = (parent_est, step_est, p);
                    let better = match best {
                        None => true,
                        Some(b) => candidate < b,
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
                let (_, est_rows, pivot) = best.expect("non-empty mask has a pivot");
                nodes[mask as usize] = PlanNode {
                    pivot: pivot as u8,
                    est_rows,
                };
            }
        }
        Ok(JoinPlan {
            num_relations: m,
            decomp: Decomposition::CostBased(nodes),
            top_order,
        })
    }

    /// Number of relations the plan covers.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Whether the plan carries cost-based pivots (false for the
    /// fixed-prefix chain, including the wide-query fallback).
    pub fn is_cost_based(&self) -> bool {
        matches!(self.decomp, Decomposition::CostBased(_))
    }

    /// The relation peeled off (joined last) when materialising `mask`'s
    /// sub-join.  `mask` must be non-zero and within range.
    pub fn pivot(&self, mask: u32) -> usize {
        debug_assert!(mask != 0 && (mask >> self.num_relations) == 0);
        match &self.decomp {
            Decomposition::FixedPrefix => (31 - mask.leading_zeros()) as usize,
            Decomposition::CostBased(nodes) => nodes[mask as usize].pivot as usize,
        }
    }

    /// The parent subset `mask`'s sub-join is built from: `mask` minus its
    /// pivot (zero for singletons).
    pub fn parent(&self, mask: u32) -> u32 {
        mask & !(1u32 << self.pivot(mask))
    }

    /// The planner's estimated distinct-tuple cardinality of `mask`'s
    /// sub-join (`None` on fixed-prefix plans, which carry no estimates).
    pub fn estimated_rows(&self, mask: u32) -> Option<f64> {
        match &self.decomp {
            Decomposition::FixedPrefix => None,
            Decomposition::CostBased(nodes) => Some(nodes[mask as usize].est_rows),
        }
    }

    /// The recorded relation order of the top-level full join (empty on
    /// plans built without instance statistics).
    pub fn top_order(&self) -> &[usize] {
        &self.top_order
    }

    /// The pivot chain from the full mask down to a singleton — the spine of
    /// intermediates a lazy full-lattice walk materialises.
    pub fn spine(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_relations);
        if self.num_relations == 0 || self.num_relations >= 32 {
            return out;
        }
        let mut mask = (1u32 << self.num_relations) - 1;
        while mask != 0 {
            let p = self.pivot(mask);
            out.push(p);
            mask &= !(1u32 << p);
        }
        out
    }

    /// Validates that the plan was built for an `m`-relation query.
    pub(crate) fn check_relations(&self, m: usize) -> Result<()> {
        if self.num_relations != m {
            return Err(RelationalError::InvalidRelationSubset(format!(
                "join plan covers {} relations but the query has {m}",
                self.num_relations
            )));
        }
        Ok(())
    }
}

/// A shared, immutable plan handle (what caches and context slots carry).
pub type SharedJoinPlan = Arc<JoinPlan>;

/// Planner diagnostics for one `(query, instance)` pair: the decomposition
/// choices with estimated and (where materialised) actual intermediate
/// cardinalities.  Produced by [`crate::ExecContext::plan_stats`] /
/// `dpsyn::Session::plan_stats`.
#[derive(Debug, Clone)]
pub struct PlanStats {
    /// Whether the stored plan is cost-based (vs the fixed-prefix fallback).
    pub cost_based: bool,
    /// Relation order of the top-level full join.
    pub top_order: Vec<usize>,
    /// The pivot chain from the full mask down (see [`JoinPlan::spine`]).
    pub spine: Vec<usize>,
    /// Per-subset decomposition entries (empty beyond
    /// [`PLAN_MAX_RELATIONS`] relations).
    pub nodes: Vec<PlanNodeStats>,
    /// Number of lattice entries currently materialised for the pair.
    pub cached_masks: usize,
    /// Total distinct tuples across those materialised entries — the
    /// resident intermediate footprint the planner works to shrink.
    pub cached_tuples: usize,
}

/// One subset's row in [`PlanStats`].
#[derive(Debug, Clone, Copy)]
pub struct PlanNodeStats {
    /// Subset bitmask (bit `i` set ⇔ relation `i` participates).
    pub mask: u32,
    /// Relation the subset peels off (joined last).
    pub pivot: usize,
    /// Planner-estimated cardinality (`None` on fixed-prefix plans).
    pub estimated_rows: Option<f64>,
    /// Actual distinct-tuple count, when the subset is materialised in the
    /// context's lattice.
    pub actual_rows: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn path_instance(m: usize, per_rel: u64) -> (JoinQuery, Instance) {
        let q = JoinQuery::path(m, 64).unwrap();
        let mut inst = Instance::empty_for(&q).unwrap();
        for r in 0..m {
            for v in 0..per_rel {
                inst.relation_mut(r)
                    .add(vec![v % 64, (v + 1) % 64], 1)
                    .unwrap();
            }
        }
        (q, inst)
    }

    #[test]
    fn stats_count_rows_and_distinct_values() {
        let q = JoinQuery::two_table(8, 8, 8);
        let r1 = Relation::from_tuples(
            ids(&[0, 1]),
            vec![(vec![0, 0], 1), (vec![1, 0], 2), (vec![2, 1], 1)],
        )
        .unwrap();
        let r2 =
            Relation::from_tuples(ids(&[1, 2]), vec![(vec![0, 0], 1), (vec![0, 1], 1)]).unwrap();
        let inst = Instance::new(vec![r1, r2]);
        let stats = RelationStats::gather(&q, &inst).unwrap();
        assert_eq!(stats.rows(0), 3);
        assert_eq!(stats.rows(1), 2);
        assert_eq!(stats.distinct(0, AttrId(0)), 3);
        assert_eq!(stats.distinct(0, AttrId(1)), 2);
        assert_eq!(stats.distinct(1, AttrId(1)), 1);
        // Attribute not carried by the relation.
        assert_eq!(stats.distinct(1, AttrId(0)), 0);
    }

    #[test]
    fn fixed_prefix_plan_peels_the_highest_index() {
        let plan = JoinPlan::fixed_prefix(4);
        assert!(!plan.is_cost_based());
        assert_eq!(plan.pivot(0b1011), 3);
        assert_eq!(plan.parent(0b1011), 0b0011);
        assert_eq!(plan.pivot(0b0001), 0);
        assert_eq!(plan.estimated_rows(0b1011), None);
        assert_eq!(plan.spine(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn cost_based_plan_avoids_cross_product_parents_on_paths() {
        let (q, inst) = path_instance(4, 40);
        let plan = JoinPlan::cost_based(&q, &inst).unwrap();
        assert!(plan.is_cost_based());
        // {0, 1, 3}: the fixed chain peels 3 and routes through {0, 1}; any
        // choice is fine there.  {0, 2, 3} however must NOT peel 3 onto the
        // cross product {0, 2} — the planner peels 0, keeping the linear
        // {2, 3} as the parent.
        let mask = 0b1101u32;
        assert_eq!(plan.pivot(mask), 0, "parent {:#b}", plan.parent(mask));
        assert_eq!(plan.parent(mask), 0b1100);
        // Estimates price the cross product above the linear chains.
        let cross = plan.estimated_rows(0b0101).unwrap();
        let linear = plan.estimated_rows(0b0011).unwrap();
        assert!(cross > linear * 4.0, "cross {cross} vs linear {linear}");
    }

    #[test]
    fn plan_is_deterministic_and_matches_query_arity() {
        let (q, inst) = path_instance(3, 20);
        let a = JoinPlan::cost_based(&q, &inst).unwrap();
        let b = JoinPlan::cost_based(&q, &inst).unwrap();
        for mask in 1u32..(1 << 3) {
            assert_eq!(a.pivot(mask), b.pivot(mask));
            assert_eq!(a.estimated_rows(mask), b.estimated_rows(mask));
        }
        assert_eq!(a.top_order(), b.top_order());
        assert_eq!(a.top_order().len(), 3);
        assert!(a.check_relations(3).is_ok());
        assert!(a.check_relations(4).is_err());
    }

    #[test]
    fn parallel_stats_gather_matches_sequential_at_every_thread_count() {
        let (q, inst) = path_instance(4, 40);
        let seq = RelationStats::gather(&q, &inst).unwrap();
        for &threads in &[1usize, 2, 4, 8] {
            let par = RelationStats::gather_with(&q, &inst, Parallelism::threads(threads)).unwrap();
            for r in 0..4 {
                assert_eq!(par.rows(r), seq.rows(r), "threads {threads}");
                for a in 0..5u16 {
                    assert_eq!(
                        par.distinct(r, AttrId(a)),
                        seq.distinct(r, AttrId(a)),
                        "relation {r}, attr {a}, threads {threads}"
                    );
                }
            }
            let plan = JoinPlan::cost_based_with(&q, &inst, Parallelism::threads(threads)).unwrap();
            let base = JoinPlan::cost_based(&q, &inst).unwrap();
            for mask in 1u32..(1 << 4) {
                assert_eq!(plan.pivot(mask), base.pivot(mask), "threads {threads}");
                assert_eq!(plan.estimated_rows(mask), base.estimated_rows(mask));
            }
        }
    }

    #[test]
    fn singleton_estimates_are_exact_row_counts() {
        let (q, inst) = path_instance(3, 17);
        let plan = JoinPlan::cost_based(&q, &inst).unwrap();
        for r in 0..3 {
            assert_eq!(
                plan.estimated_rows(1 << r).unwrap(),
                inst.relation(r).distinct_count() as f64
            );
            assert_eq!(plan.pivot(1 << r), r);
            assert_eq!(plan.parent(1 << r), 0);
        }
    }

    #[test]
    fn mismatched_instance_is_rejected() {
        let q = JoinQuery::two_table(4, 4, 4);
        let r1 = Relation::from_tuples(ids(&[0, 1]), vec![(vec![0, 0], 1)]).unwrap();
        let inst = Instance::new(vec![r1]);
        assert!(RelationStats::gather(&q, &inst).is_err());
        assert!(JoinPlan::cost_based(&q, &inst).is_err());
    }
}
