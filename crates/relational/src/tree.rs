//! Attribute trees for hierarchical join queries (Section 4.2).
//!
//! A join query is *hierarchical* when, for every pair of attributes `x, y`,
//! the relation sets `atom(x)` and `atom(y)` are nested or disjoint.  The
//! attributes of a hierarchical query can be organised into a forest in which
//! every relation corresponds to a root-to-node path (Figure 4 of the paper).
//! The hierarchical partition procedure (Algorithm 6) walks this tree bottom
//! up, and Lemma 4.8 identifies, for each attribute `x`, the maximum degree
//! `mdeg_{atom(x)}(ancestors(x))` that must be uniformized.

use crate::attr::AttrId;
use crate::error::RelationalError;
use crate::hypergraph::JoinQuery;
use crate::Result;

/// The attribute forest of a hierarchical join query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeTree {
    /// Parent of each attribute (`None` for roots).  Indexed by attribute id.
    parent: Vec<Option<AttrId>>,
    /// Children of each attribute.  Indexed by attribute id.
    children: Vec<Vec<AttrId>>,
    /// Root attributes (attributes with maximal `atom` sets).
    roots: Vec<AttrId>,
    /// Attributes in a bottom-up order (every attribute appears after all of
    /// its descendants).
    bottom_up: Vec<AttrId>,
}

impl AttributeTree {
    /// Builds the attribute tree of a hierarchical join query.
    ///
    /// Returns [`RelationalError::NotHierarchical`] when the query is not
    /// hierarchical.  Attributes that appear in no relation are left out of
    /// the tree (they have no `atom` and play no role in the join).
    pub fn build(query: &JoinQuery) -> Result<Self> {
        if !query.is_hierarchical() {
            return Err(RelationalError::NotHierarchical(
                "attribute tree requires a hierarchical join query".to_string(),
            ));
        }
        let attr_count = query.schema().attr_count();
        let atoms: Vec<Vec<usize>> = (0..attr_count as u16)
            .map(|a| query.atom(AttrId(a)))
            .collect();

        let mut parent: Vec<Option<AttrId>> = vec![None; attr_count];
        let mut children: Vec<Vec<AttrId>> = vec![Vec::new(); attr_count];
        let mut roots = Vec::new();

        for x in 0..attr_count {
            if atoms[x].is_empty() {
                continue; // attribute unused by the query
            }
            // Candidate parents: attributes whose atom strictly contains
            // atom(x), or equals it with a smaller id (to chain equal-atom
            // attributes deterministically).
            let mut best: Option<(usize, usize)> = None; // (|atom|, attr id)
            for y in 0..attr_count {
                if y == x || atoms[y].is_empty() {
                    continue;
                }
                let contains = atoms[x].iter().all(|i| atoms[y].contains(i));
                if !contains {
                    continue;
                }
                let strictly = atoms[y].len() > atoms[x].len();
                let equal_chain = atoms[y].len() == atoms[x].len() && y < x;
                if strictly || equal_chain {
                    let key = (atoms[y].len(), y);
                    // Minimal |atom| wins; among equals the largest id wins so
                    // that equal-atom attributes form a chain x0 ← x1 ← x2 …
                    let better = match best {
                        None => true,
                        Some((len, id)) => key.0 < len || (key.0 == len && key.1 > id),
                    };
                    if better {
                        best = Some(key);
                    }
                }
            }
            match best {
                Some((_, y)) => {
                    parent[x] = Some(AttrId(y as u16));
                    children[y].push(AttrId(x as u16));
                }
                None => roots.push(AttrId(x as u16)),
            }
        }

        // Bottom-up (post-order) traversal.
        let mut bottom_up = Vec::with_capacity(attr_count);
        fn post_order(node: AttrId, children: &[Vec<AttrId>], out: &mut Vec<AttrId>) {
            for &c in &children[node.index()] {
                post_order(c, children, out);
            }
            out.push(node);
        }
        for &r in &roots {
            post_order(r, &children, &mut bottom_up);
        }

        let tree = AttributeTree {
            parent,
            children,
            roots,
            bottom_up,
        };
        tree.verify_paths(query)?;
        Ok(tree)
    }

    /// Verifies that every relation corresponds to a root-to-node path, the
    /// defining property of hierarchical queries (Section 4.2).
    fn verify_paths(&self, query: &JoinQuery) -> Result<()> {
        for i in 0..query.num_relations() {
            let attrs = query.relation_attrs(i);
            // The relation's attributes, sorted by depth, must form a chain
            // where each one's parent is the previous one.
            let mut by_depth: Vec<AttrId> = attrs.to_vec();
            by_depth.sort_by_key(|a| self.depth(*a));
            for w in by_depth.windows(2) {
                if self.parent(w[1]) != Some(w[0]) {
                    return Err(RelationalError::NotHierarchical(format!(
                        "relation {i} does not form a root-to-node path: {} is not the parent of {}",
                        w[0], w[1]
                    )));
                }
            }
            // The shallowest attribute must be a root.
            if let Some(first) = by_depth.first() {
                if self.parent(*first).is_some() {
                    return Err(RelationalError::NotHierarchical(format!(
                        "relation {i} does not start at a root attribute"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Parent of an attribute (`None` for roots or unused attributes).
    pub fn parent(&self, x: AttrId) -> Option<AttrId> {
        self.parent.get(x.index()).copied().flatten()
    }

    /// Children of an attribute.
    pub fn children(&self, x: AttrId) -> &[AttrId] {
        &self.children[x.index()]
    }

    /// Root attributes.
    pub fn roots(&self) -> &[AttrId] {
        &self.roots
    }

    /// Depth of an attribute (roots have depth 0).
    pub fn depth(&self, x: AttrId) -> usize {
        let mut d = 0;
        let mut cur = x;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Strict ancestors of `x`, ordered root → parent (the paper's `y` — the
    /// ancestors of `x` in `T`).  Returned sorted by [`AttrId`] so the result
    /// can be used directly as a projection target.
    pub fn ancestors(&self, x: AttrId) -> Vec<AttrId> {
        let mut out = Vec::new();
        let mut cur = x;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out.sort();
        out
    }

    /// Attributes in bottom-up order (every node after all of its descendants):
    /// the visit order of Algorithm 6.
    pub fn bottom_up_order(&self) -> &[AttrId] {
        &self.bottom_up
    }

    /// Number of attributes participating in the tree.
    pub fn len(&self) -> usize {
        self.bottom_up.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.bottom_up.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Schema;

    fn ids(v: &[u16]) -> Vec<AttrId> {
        v.iter().map(|&x| AttrId(x)).collect()
    }

    fn figure4_query() -> JoinQuery {
        let schema = Schema::uniform(&["A", "B", "C", "D", "F", "G", "K", "L"], 4);
        JoinQuery::new(
            schema,
            vec![
                ids(&[0, 1, 3]),    // x1 = {A,B,D}
                ids(&[0, 1, 4]),    // x2 = {A,B,F}
                ids(&[0, 1, 5, 6]), // x3 = {A,B,G,K}
                ids(&[0, 1, 5, 7]), // x4 = {A,B,G,L}
                ids(&[0, 2]),       // x5 = {A,C}
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure4_tree_shape() {
        let q = figure4_query();
        let tree = AttributeTree::build(&q).unwrap();
        // A is the unique root; B and C are children of A; D, F, G under B;
        // K, L under G.
        assert_eq!(tree.roots(), &[AttrId(0)]);
        assert_eq!(tree.parent(AttrId(1)), Some(AttrId(0))); // B ← A
        assert_eq!(tree.parent(AttrId(2)), Some(AttrId(0))); // C ← A
        assert_eq!(tree.parent(AttrId(3)), Some(AttrId(1))); // D ← B
        assert_eq!(tree.parent(AttrId(4)), Some(AttrId(1))); // F ← B
        assert_eq!(tree.parent(AttrId(5)), Some(AttrId(1))); // G ← B
        assert_eq!(tree.parent(AttrId(6)), Some(AttrId(5))); // K ← G
        assert_eq!(tree.parent(AttrId(7)), Some(AttrId(5))); // L ← G
        assert_eq!(tree.ancestors(AttrId(6)), ids(&[0, 1, 5]));
        assert_eq!(tree.ancestors(AttrId(0)), Vec::<AttrId>::new());
        assert_eq!(tree.depth(AttrId(7)), 3);
    }

    #[test]
    fn bottom_up_order_places_children_first() {
        let q = figure4_query();
        let tree = AttributeTree::build(&q).unwrap();
        let order = tree.bottom_up_order();
        assert_eq!(order.len(), 8);
        let pos = |a: AttrId| order.iter().position(|&x| x == a).unwrap();
        for a in 0..8u16 {
            if let Some(p) = tree.parent(AttrId(a)) {
                assert!(pos(AttrId(a)) < pos(p), "child {a} must precede its parent");
            }
        }
    }

    #[test]
    fn two_table_tree() {
        let q = JoinQuery::two_table(4, 4, 4);
        let tree = AttributeTree::build(&q).unwrap();
        // B (shared) is the root; A and C hang off it.
        assert_eq!(tree.roots(), &[AttrId(1)]);
        assert_eq!(tree.parent(AttrId(0)), Some(AttrId(1)));
        assert_eq!(tree.parent(AttrId(2)), Some(AttrId(1)));
    }

    #[test]
    fn star_tree_has_hub_root() {
        let q = JoinQuery::star(3, 4).unwrap();
        let tree = AttributeTree::build(&q).unwrap();
        assert_eq!(tree.roots(), &[AttrId(0)]);
        assert_eq!(tree.children(AttrId(0)).len(), 3);
    }

    #[test]
    fn non_hierarchical_rejected() {
        let q = JoinQuery::path(3, 4).unwrap();
        assert!(matches!(
            AttributeTree::build(&q),
            Err(RelationalError::NotHierarchical(_))
        ));
    }

    #[test]
    fn equal_atom_attributes_form_a_chain() {
        // Both attributes appear in both relations: atoms are equal.
        let schema = Schema::uniform(&["A", "B", "C"], 4);
        let q = JoinQuery::new(schema, vec![ids(&[0, 1]), ids(&[0, 1, 2])]).unwrap();
        let tree = AttributeTree::build(&q).unwrap();
        // atom(A) = atom(B) = {0,1}; they chain A ← B deterministically, and C
        // (atom {1}) hangs below B.
        assert_eq!(tree.roots(), &[AttrId(0)]);
        assert_eq!(tree.parent(AttrId(1)), Some(AttrId(0)));
        assert_eq!(tree.parent(AttrId(2)), Some(AttrId(1)));
    }
}
